//! The Sampling Management Unit (paper Sections III-B and IV-A).
//!
//! Every allocation calling context carries a probability of being
//! watched. The unit maintains those probabilities with the paper's
//! adaptive rules:
//!
//! * every new context starts at 50 % — "treated … as if it were equally
//!   likely to either contain a bug or be bug-free";
//! * **degradation on each allocation**: −0.001 % per allocation from the
//!   context, watched or not;
//! * **degradation after each watch**: halved whenever an object of the
//!   context is watched;
//! * a **floor** of 0.001 % so every context keeps some chance;
//! * **burst throttling**: more than 5,000 allocations inside a
//!   10-second window drop the context to 0.0001 % until the window
//!   elapses;
//! * **reviving** (Section IV-A): floor-level contexts are randomly
//!   boosted back to 0.01 % after a quiet period, so bugs gated on rare
//!   inputs keep a chance across long runs;
//! * **evidence pinning** (Section IV-B): once a corrupted canary proves
//!   a context overflows, its probability is pinned at 100 %.

use crate::config::{AnalysisPriors, RiskClass, SamplingParams};
use csod_ctx::{CallingContext, ContextKey, ContextTable, ContextTree, CtxNodeId};
use csod_rng::{Arc4Random, PPM_SCALE};
use sim_machine::VirtInstant;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Dense identifier assigned to each distinct calling context.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CtxId(u32);

impl CtxId {
    /// Builds an id from a raw index (workload registries and tests).
    pub const fn from_index(index: u32) -> Self {
        CtxId(index)
    }

    /// The raw index.
    pub const fn as_u32(self) -> u32 {
        self.0
    }
}

impl fmt::Display for CtxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ctx#{}", self.0)
    }
}

/// Per-context sampling state.
#[derive(Debug, Clone)]
pub struct CtxState {
    /// Dense id of this context.
    pub id: CtxId,
    /// The full backtrace, interned in the unit's calling-context tree
    /// (shared suffixes stored once; see [`ContextTree`]).
    pub node: CtxNodeId,
    /// Current probability in ppm.
    probability_ppm: u32,
    /// Total allocations from this context.
    pub alloc_count: u64,
    /// Times an object of this context was watched.
    pub watch_count: u64,
    /// Evidence pinning: probability stays at 100 %.
    pub pinned_certain: bool,
    /// Static verdict from the `csod-analyze` pre-pass, if one was
    /// loaded for this context.
    pub prior: Option<RiskClass>,
    window_start: VirtInstant,
    window_allocs: u32,
    burst_until: Option<VirtInstant>,
    floor_since: Option<VirtInstant>,
}

impl CtxState {
    /// Current probability in parts per million.
    pub fn probability_ppm(&self) -> u32 {
        self.probability_ppm
    }
}

/// Outcome of the sampling decision for one allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocDecision {
    /// The context's dense id.
    pub ctx_id: CtxId,
    /// `true` if this context was seen for the first time (the caller
    /// pays the `backtrace` cost exactly then).
    pub first_seen: bool,
    /// The probability used for the decision, in ppm.
    pub probability_ppm: u32,
    /// Whether the sampler wants this object watched. The watchpoint
    /// manager may still watch a rejected object when a register is free
    /// ("installation due to availability").
    pub wants_watch: bool,
    /// How many times this context had been watched before this
    /// allocation. The availability rule only bypasses the probability
    /// for never-watched contexts ("the first few objects"), which keeps
    /// the watched-times count near the context count as in Table IV.
    pub prior_watches: u64,
    /// Static verdict the unit applied to this context, if any. The
    /// runtime uses it to deny the availability bypass to proven-safe
    /// contexts and to account saved watch slots.
    pub prior: Option<RiskClass>,
}

/// The Sampling Management Unit.
#[derive(Debug)]
pub struct SamplingUnit {
    params: SamplingParams,
    priors: AnalysisPriors,
    table: ContextTable<CtxState>,
    tree: ContextTree,
    next_id: AtomicU32,
}

impl SamplingUnit {
    /// Creates a unit with the given constants and no static priors.
    pub fn new(params: SamplingParams) -> Self {
        SamplingUnit::with_priors(params, AnalysisPriors::none())
    }

    /// Creates a unit primed with static analysis verdicts: proven-safe
    /// contexts start at the floor, suspicious contexts start boosted
    /// and are exempt from burst throttling, unknown contexts follow
    /// the paper's default schedule.
    pub fn with_priors(params: SamplingParams, priors: AnalysisPriors) -> Self {
        SamplingUnit {
            params,
            priors,
            table: ContextTable::new(),
            tree: ContextTree::new(),
            next_id: AtomicU32::new(0),
        }
    }

    /// The sampling constants in effect.
    pub fn params(&self) -> &SamplingParams {
        &self.params
    }

    /// The static prior table in effect (empty when no analysis ran).
    pub fn priors(&self) -> &AnalysisPriors {
        &self.priors
    }

    /// Handles one allocation from `key` at virtual time `now`.
    ///
    /// `capture_full` is invoked only when the key is new (the expensive
    /// `backtrace`); `known_overflow` is consulted at the same moment to
    /// pre-pin contexts recorded by a previous execution's evidence file.
    pub fn on_allocation(
        &self,
        key: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        capture_full: impl FnOnce() -> CallingContext,
        known_overflow: impl FnOnce(&CallingContext) -> bool,
    ) -> AllocDecision {
        let params = self.params;
        let priors = &self.priors;
        let next_id = &self.next_id;
        let tree = &self.tree;
        self.table.with_entry_tracked(
            key,
            || {
                let full_context = capture_full();
                let pinned = known_overflow(&full_context);
                let prior = priors.class_of(key);
                // Evidence from a real execution outranks a static
                // verdict: a pinned context starts (and stays) at 100 %
                // even if the analyzer called it proven-safe.
                let initial = if pinned {
                    PPM_SCALE
                } else {
                    match prior {
                        Some(RiskClass::ProvenSafe) => params.floor_ppm,
                        Some(RiskClass::Suspicious) => priors.suspicious_ppm,
                        Some(RiskClass::Unknown) | None => params.initial_ppm,
                    }
                };
                CtxState {
                    id: CtxId(next_id.fetch_add(1, Ordering::Relaxed)),
                    node: tree.intern(&full_context),
                    probability_ppm: initial,
                    alloc_count: 0,
                    watch_count: 0,
                    pinned_certain: pinned,
                    prior,
                    window_start: now,
                    window_allocs: 0,
                    burst_until: None,
                    floor_since: None,
                }
            },
            |state, first_seen| {
                // 1. Burst-window bookkeeping.
                if now.saturating_duration_since(state.window_start) > params.burst_window {
                    state.window_start = now;
                    state.window_allocs = 0;
                }
                if let Some(until) = state.burst_until {
                    if now >= until {
                        // Window elapsed: "the probability … will again be
                        // increased to the lower bound".
                        state.burst_until = None;
                        if !state.pinned_certain {
                            state.probability_ppm = state.probability_ppm.max(params.floor_ppm);
                        }
                    }
                }
                state.window_allocs += 1;
                // Suspicious contexts are exempt from burst throttling:
                // an allocation burst from a statically risky site is
                // exactly when the watchpoints should stay on it.
                if !state.pinned_certain
                    && state.prior != Some(RiskClass::Suspicious)
                    && state.burst_until.is_none()
                    && state.window_allocs > params.burst_threshold
                {
                    state.probability_ppm = params.burst_ppm;
                    state.burst_until = Some(state.window_start + params.burst_window);
                }

                // 2. Reviving (Section IV-A): floor-level contexts are
                // randomly boosted after a quiet period.
                if !state.pinned_certain && state.burst_until.is_none() {
                    if state.probability_ppm <= params.floor_ppm {
                        match state.floor_since {
                            None => state.floor_since = Some(now),
                            Some(since)
                                if now.saturating_duration_since(since)
                                    >= params.revive_period
                                    && rng.chance_ppm(params.revive_chance_ppm) =>
                            {
                                state.probability_ppm = params.revive_ppm;
                                state.floor_since = None;
                            }
                            Some(_) => {}
                        }
                    } else {
                        state.floor_since = None;
                    }
                }

                // 3. The decision itself, at the pre-degradation probability.
                let probability_ppm = state.probability_ppm;
                let wants_watch =
                    state.pinned_certain || rng.chance_ppm(probability_ppm);

                // 4. Degradation on each allocation, floor-bounded.
                state.alloc_count += 1;
                if !state.pinned_certain
                    && state.burst_until.is_none()
                    && state.probability_ppm > params.floor_ppm
                {
                    state.probability_ppm = state
                        .probability_ppm
                        .saturating_sub(params.degrade_per_alloc_ppm)
                        .max(params.floor_ppm);
                }

                AllocDecision {
                    ctx_id: state.id,
                    first_seen,
                    probability_ppm,
                    wants_watch,
                    prior_watches: state.watch_count,
                    prior: state.prior,
                }
            },
        )
    }

    /// Records that an object of `key` was watched: halves the context's
    /// probability ("degradation after each watch").
    pub fn on_watched(&self, key: ContextKey) {
        let floor = self.params.floor_ppm;
        self.table.with_existing(key, |state| {
            state.watch_count += 1;
            if !state.pinned_certain {
                state.probability_ppm = (state.probability_ppm / 2).max(floor);
            }
        });
    }

    /// Drops `key` to the probability floor — called when the degradation
    /// manager benches a context whose installs keep failing, so the
    /// sampler stops proposing it while the quarantine lasts. Evidence-
    /// pinned contexts are exempt: a proven overflow outranks backend
    /// trouble.
    pub fn quarantine(&self, key: ContextKey) {
        let floor = self.params.floor_ppm;
        self.table.with_existing(key, |state| {
            if !state.pinned_certain {
                state.probability_ppm = floor;
            }
        });
    }

    /// Pins `key` at 100 % — called when canary evidence proves the
    /// context overflows (Section IV-B).
    pub fn pin_certain(&self, key: ContextKey) {
        self.table.with_existing(key, |state| {
            state.pinned_certain = true;
            state.probability_ppm = PPM_SCALE;
        });
    }

    /// Current probability of `key`, if seen.
    pub fn probability_ppm(&self, key: ContextKey) -> Option<u32> {
        self.table.with_existing(key, |s| s.probability_ppm)
    }

    /// The full calling context of `key`, if seen (materialized from
    /// the context tree).
    pub fn full_context(&self, key: ContextKey) -> Option<CallingContext> {
        let node = self.table.with_existing(key, |s| s.node)?;
        Some(self.tree.materialize(node))
    }

    /// The calling-context tree storing the full backtraces.
    pub fn tree(&self) -> &ContextTree {
        &self.tree
    }

    /// State snapshot of `key`, if seen.
    pub fn state(&self, key: ContextKey) -> Option<CtxState> {
        self.table.with_existing(key, |s| s.clone())
    }

    /// Number of distinct contexts observed (Table III/IV "CC" column).
    pub fn distinct_contexts(&self) -> usize {
        self.table.len()
    }

    /// Snapshot of all context states for end-of-run reporting.
    pub fn snapshot(&self) -> Vec<(ContextKey, CtxState)> {
        self.table.snapshot()
    }

    /// Total allocations across all contexts.
    pub fn total_allocations(&self) -> u64 {
        let mut total = 0;
        self.table.for_each(|_, s| total += s.alloc_count);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;
    use sim_machine::VirtDuration;

    fn unit() -> SamplingUnit {
        SamplingUnit::new(SamplingParams::default())
    }

    fn key(frames: &FrameTable, name: &str) -> ContextKey {
        ContextKey::new(frames.intern(name), 0x40)
    }

    fn ctx(frames: &FrameTable, name: &str) -> CallingContext {
        CallingContext::from_locations(frames, [name, "main.c:1"])
    }

    fn alloc(
        unit: &SamplingUnit,
        k: ContextKey,
        now: VirtInstant,
        rng: &mut Arc4Random,
        frames: &FrameTable,
    ) -> AllocDecision {
        unit.on_allocation(k, now, rng, || ctx(frames, "site"), |_| false)
    }

    #[test]
    fn new_context_starts_at_fifty_percent() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        assert!(d.first_seen);
        assert_eq!(d.probability_ppm, 500_000);
        assert_eq!(d.ctx_id, CtxId(0));
        // Second allocation: no longer first seen, degraded by 10 ppm.
        let d2 = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        assert!(!d2.first_seen);
        assert_eq!(d2.probability_ppm, 499_990);
    }

    #[test]
    fn ids_are_dense_per_context() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let a = alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        let b = alloc(&u, key(&frames, "b"), VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(a.ctx_id, CtxId(0));
        assert_eq!(b.ctx_id, CtxId(1));
        assert_eq!(u.distinct_contexts(), 2);
    }

    #[test]
    fn capture_full_runs_only_once() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let mut captures = 0;
        for _ in 0..5 {
            u.on_allocation(
                k,
                VirtInstant::BOOT,
                &mut rng,
                || {
                    captures += 1;
                    ctx(&frames, "a")
                },
                |_| false,
            );
        }
        assert_eq!(captures, 1, "backtrace is captured exactly once");
    }

    #[test]
    fn degradation_reaches_floor_and_stops() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        // 50_000 allocations * 10 ppm = 500_000 ppm of degradation, far
        // past the floor. Keep every allocation in a fresh window to
        // avoid burst throttling.
        let mut now = VirtInstant::BOOT;
        for i in 0..60_000u64 {
            if i % 4_000 == 0 {
                now = now + VirtDuration::from_secs(11);
            }
            alloc(&u, k, now, &mut rng, &frames);
        }
        let p = u.probability_ppm(k).unwrap();
        // Reviving may have bumped it to 0.01%, but never above that.
        assert!(p <= 100, "probability {p} should be at/near the floor");
        assert!(p >= 10, "probability {p} must respect the floor");
    }

    #[test]
    fn watch_halves_probability() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        let before = u.probability_ppm(k).unwrap();
        u.on_watched(k);
        assert_eq!(u.probability_ppm(k).unwrap(), before / 2);
        assert_eq!(u.state(k).unwrap().watch_count, 1);
        // Halving also floors.
        for _ in 0..30 {
            u.on_watched(k);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 10);
    }

    #[test]
    fn burst_throttles_then_recovers_to_floor() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "swaptions");
        let t0 = VirtInstant::BOOT;
        // 5,001 allocations within one window trip the throttle.
        for _ in 0..5_001 {
            alloc(&u, k, t0, &mut rng, &frames);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 1, "0.0001% while bursting");
        // Decisions during the burst use the throttled probability.
        let d = alloc(&u, k, t0 + VirtDuration::from_secs(1), &mut rng, &frames);
        assert_eq!(d.probability_ppm, 1);
        // After the window elapses the probability returns to the floor.
        let later = t0 + VirtDuration::from_secs(11);
        let d = alloc(&u, k, later, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 10, "recovered to the lower bound");
    }

    #[test]
    fn reviving_boosts_floor_contexts() {
        let frames = FrameTable::new();
        let params = SamplingParams {
            revive_chance_ppm: PPM_SCALE, // make reviving deterministic
            ..SamplingParams::default()
        };
        let u = SamplingUnit::new(params);
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        // Drive to the floor: initial 50% degrades by 10ppm per alloc;
        // use watches instead for speed.
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        for _ in 0..30 {
            u.on_watched(k);
        }
        assert_eq!(u.probability_ppm(k).unwrap(), 10);
        // First allocation at the floor records the floor time...
        let t1 = VirtInstant::BOOT + VirtDuration::from_secs(1);
        alloc(&u, k, t1, &mut rng, &frames);
        // ...and after the revive period the next allocation boosts.
        let t2 = t1 + VirtDuration::from_secs(11);
        let d = alloc(&u, k, t2, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 100, "revived to 0.01%");
    }

    #[test]
    fn pinned_contexts_always_watch() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        u.pin_certain(k);
        for _ in 0..50 {
            let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
            assert!(d.wants_watch);
            assert_eq!(d.probability_ppm, PPM_SCALE);
        }
        // Watching a pinned context must not halve it.
        u.on_watched(k);
        assert_eq!(u.probability_ppm(k).unwrap(), PPM_SCALE);
    }

    #[test]
    fn known_overflow_prepins_on_first_sight() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        let k = key(&frames, "a");
        let d = u.on_allocation(
            k,
            VirtInstant::BOOT,
            &mut rng,
            || ctx(&frames, "a"),
            |_| true, // the evidence file knows this context
        );
        assert!(d.wants_watch);
        assert_eq!(d.probability_ppm, PPM_SCALE);
        assert!(u.state(k).unwrap().pinned_certain);
    }

    #[test]
    fn decision_statistics_follow_probability() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(77, 0);
        let k = key(&frames, "a");
        // At ~50% the first decisions should be a near-even split.
        let mut watched = 0;
        for _ in 0..1_000 {
            // Reset degradation drift by using many contexts would be
            // complex; tolerate the slight downward drift (~1%).
            if alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames).wants_watch {
                watched += 1;
            }
        }
        assert!((400..600).contains(&watched), "watched {watched}/1000");
    }

    #[test]
    fn proven_safe_prior_starts_at_the_floor() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "safe_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::ProvenSafe)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert!(d.first_seen);
        assert_eq!(d.probability_ppm, SamplingParams::default().floor_ppm);
        assert_eq!(d.prior, Some(RiskClass::ProvenSafe));
        // Contexts without a verdict keep the 50% default.
        let other = key(&frames, "other_site");
        let d2 = alloc(&u, other, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d2.probability_ppm, 500_000);
        assert_eq!(d2.prior, None);
    }

    #[test]
    fn suspicious_prior_boosts_and_skips_burst_throttle() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "risky_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::Suspicious)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d.probability_ppm, AnalysisPriors::DEFAULT_SUSPICIOUS_PPM);
        assert_eq!(d.prior, Some(RiskClass::Suspicious));
        // 5,001 allocations in one window would throttle a default
        // context to 0.0001%; a suspicious context keeps degrading
        // normally instead.
        for _ in 0..5_001 {
            alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        }
        let p = u.probability_ppm(k).unwrap();
        assert!(p > SamplingParams::default().burst_ppm, "not throttled: {p}");
        assert!(
            p >= AnalysisPriors::DEFAULT_SUSPICIOUS_PPM - 5_002 * 10,
            "only ordinary degradation applied: {p}"
        );
    }

    #[test]
    fn unknown_prior_follows_default_schedule() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "murky_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::Unknown)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        let d = alloc(&u, k, VirtInstant::BOOT, &mut rng, &frames);
        assert_eq!(d.probability_ppm, 500_000);
        assert_eq!(d.prior, Some(RiskClass::Unknown));
    }

    #[test]
    fn evidence_outranks_a_proven_safe_prior() {
        use crate::config::AnalysisPriors;
        use crate::config::RiskClass;
        let frames = FrameTable::new();
        let k = key(&frames, "misjudged_site");
        let priors = AnalysisPriors::from_classes([(k, RiskClass::ProvenSafe)]);
        let u = SamplingUnit::with_priors(SamplingParams::default(), priors);
        let mut rng = Arc4Random::from_seed(1, 0);
        // The evidence file from a previous run knows this context
        // overflows: pinning wins over the static verdict.
        let d = u.on_allocation(
            k,
            VirtInstant::BOOT,
            &mut rng,
            || ctx(&frames, "misjudged_site"),
            |_| true,
        );
        assert!(d.wants_watch);
        assert_eq!(d.probability_ppm, PPM_SCALE);
        // Runtime canary evidence also overrides an already-applied
        // floor start.
        let k2 = key(&frames, "misjudged_site_2");
        let u2 = SamplingUnit::with_priors(
            SamplingParams::default(),
            AnalysisPriors::from_classes([(k2, RiskClass::ProvenSafe)]),
        );
        alloc(&u2, k2, VirtInstant::BOOT, &mut rng, &frames);
        u2.pin_certain(k2);
        assert_eq!(u2.probability_ppm(k2).unwrap(), PPM_SCALE);
    }

    #[test]
    fn total_allocations_sums_contexts() {
        let frames = FrameTable::new();
        let u = unit();
        let mut rng = Arc4Random::from_seed(1, 0);
        for _ in 0..3 {
            alloc(&u, key(&frames, "a"), VirtInstant::BOOT, &mut rng, &frames);
        }
        for _ in 0..2 {
            alloc(&u, key(&frames, "b"), VirtInstant::BOOT, &mut rng, &frames);
        }
        assert_eq!(u.total_allocations(), 5);
        assert_eq!(u.snapshot().len(), 2);
    }
}
