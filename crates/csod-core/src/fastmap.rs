//! FxHash-style open-addressed maps for the allocation fast path.
//!
//! `std::collections::HashMap` pays SipHash plus a control-byte probe on
//! every access — fine for general code, wasteful for the two lookups
//! CSOD performs on *every* `malloc`/`free` (the live-object record and
//! the per-thread decision cache). [`FastMap`] is the hot-path
//! replacement: linear probing over a power-of-two slot array, one
//! multiply-and-shift hash ([`FastKey::fast_hash`], the `fxhash`
//! recipe), and backward-shift deletion so heavy insert/remove churn
//! (one per allocation lifetime) never accumulates tombstones.
//!
//! The map is deliberately minimal: `Copy + Eq` keys, no iteration
//! order guarantees, no incremental shrinking. That is exactly what the
//! runtime's pointer-keyed bookkeeping needs and nothing more.

/// Keys usable in a [`FastMap`]: cheap to copy, cheap to hash.
pub trait FastKey: Copy + Eq {
    /// A well-mixed 64-bit hash of the key. Quality matters more than
    /// it would for a chained table: linear probing clusters badly on
    /// low-entropy hashes.
    fn fast_hash(&self) -> u64;
}

/// The 64-bit `fxhash` multiplier (golden-ratio based, as used by the
/// Firefox and rustc hashers this module is named after).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FastKey for u64 {
    fn fast_hash(&self) -> u64 {
        // One fxhash round, then a xor-fold so the high bits (which
        // pick the slot via the mask below) depend on every input bit.
        let h = (self.rotate_left(5) ^ FX_SEED).wrapping_mul(FX_SEED);
        h ^ (h >> 32)
    }
}

impl FastKey for csod_ctx::ContextKey {
    fn fast_hash(&self) -> u64 {
        self.hash64()
    }
}

/// An open-addressed hash map with linear probing.
///
/// # Examples
///
/// ```
/// use csod_core::FastMap;
///
/// let mut live: FastMap<u64, &str> = FastMap::new();
/// live.insert(0x4000, "object A");
/// live.insert(0x4040, "object B");
/// assert_eq!(live.get(0x4000), Some(&"object A"));
/// assert_eq!(live.remove(0x4000), Some("object A"));
/// assert_eq!(live.get(0x4000), None);
/// assert_eq!(live.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct FastMap<K: FastKey, V> {
    slots: Vec<Option<(K, V)>>,
    len: usize,
}

impl<K: FastKey, V> Default for FastMap<K, V> {
    fn default() -> Self {
        FastMap::new()
    }
}

impl<K: FastKey, V> FastMap<K, V> {
    /// Smallest non-empty slot count.
    const MIN_CAPACITY: usize = 8;

    /// Creates an empty map (no allocation until the first insert).
    pub fn new() -> Self {
        FastMap {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Creates a map pre-sized for `capacity` entries.
    pub fn with_capacity(capacity: usize) -> Self {
        let mut map = FastMap::new();
        if capacity > 0 {
            map.rebuild((capacity * 8 / 7 + 1).next_power_of_two().max(Self::MIN_CAPACITY));
        }
        map
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Slot index for a hash: masking down to the (power-of-two) table
    /// size first makes the 64-to-pointer-width cast lossless.
    #[allow(clippy::cast_possible_truncation)]
    fn slot(hash: u64, mask: usize) -> usize {
        (hash & mask as u64) as usize
    }

    /// Index of `key` if present, else the empty slot where a probe for
    /// it ends. Caller must ensure `slots` is non-empty.
    fn probe(&self, key: K) -> Result<usize, usize> {
        let mask = self.mask();
        let mut i = Self::slot(key.fast_hash(), mask);
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Ok(i),
                Some(_) => i = (i + 1) & mask,
                None => return Err(i),
            }
        }
    }

    fn rebuild(&mut self, new_cap: usize) {
        debug_assert!(new_cap.is_power_of_two());
        let old = std::mem::take(&mut self.slots);
        self.slots.resize_with(new_cap, || None);
        for (k, v) in old.into_iter().flatten() {
            let at = self
                .probe(k)
                .expect_err("rehash of distinct keys finds a free slot");
            self.slots[at] = Some((k, v));
        }
    }

    fn grow_if_needed(&mut self) {
        if self.slots.is_empty() {
            self.rebuild(Self::MIN_CAPACITY);
        } else if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.rebuild(self.slots.len() * 2);
        }
    }

    /// Inserts or replaces the value for `key`; returns the previous
    /// value if the key was present.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.grow_if_needed();
        match self.probe(key) {
            Ok(at) => self.slots[at].replace((key, value)).map(|(_, old)| old),
            Err(at) => {
                self.slots[at] = Some((key, value));
                self.len += 1;
                None
            }
        }
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: K) -> Option<&V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Ok(at) => self.slots[at].as_ref().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: K) -> Option<&mut V> {
        if self.slots.is_empty() {
            return None;
        }
        match self.probe(key) {
            Ok(at) => self.slots[at].as_mut().map(|(_, v)| v),
            Err(_) => None,
        }
    }

    /// Whether `key` has an entry.
    pub fn contains(&self, key: K) -> bool {
        !self.slots.is_empty() && self.probe(key).is_ok()
    }

    /// The value for `key`, inserting `init()` first when absent.
    // The `expect` re-reads the slot `probe` just reported (or this call
    // just filled) as occupied — an internal invariant, not a
    // caller-reachable panic.
    #[allow(clippy::missing_panics_doc)]
    pub fn get_or_insert_with(&mut self, key: K, init: impl FnOnce() -> V) -> &mut V {
        self.grow_if_needed();
        let at = match self.probe(key) {
            Ok(at) => at,
            Err(at) => {
                self.slots[at] = Some((key, init()));
                self.len += 1;
                at
            }
        };
        self.slots[at].as_mut().map(|(_, v)| v).expect("occupied")
    }

    /// Removes the entry for `key`, returning its value.
    ///
    /// Uses backward-shift deletion: subsequent entries of the probe
    /// cluster are moved back over the hole, so lookups never traverse
    /// tombstones no matter how many allocate/free cycles the map sees.
    pub fn remove(&mut self, key: K) -> Option<V> {
        if self.slots.is_empty() {
            return None;
        }
        let mut hole = match self.probe(key) {
            Ok(at) => at,
            Err(_) => return None,
        };
        let (_, removed) = self.slots[hole].take()?;
        self.len -= 1;
        // Backward shift: walk the cluster after the hole; any entry
        // whose home position does not lie strictly between the hole
        // and itself (cyclically) is moved into the hole.
        let mask = self.mask();
        let mut i = (hole + 1) & mask;
        while let Some((k, _)) = &self.slots[i] {
            let home = Self::slot(k.fast_hash(), mask);
            // `home` is outside the half-open cyclic interval (hole, i]
            // exactly when the entry may be moved back to `hole`.
            let distance_home = i.wrapping_sub(home) & mask;
            let distance_hole = i.wrapping_sub(hole) & mask;
            if distance_home >= distance_hole {
                self.slots[hole] = self.slots[i].take();
                hole = i;
            }
            i = (i + 1) & mask;
        }
        Some(removed)
    }

    /// Visits every entry in unspecified order.
    pub fn for_each(&self, mut f: impl FnMut(K, &V)) {
        for (k, v) in self.slots.iter().flatten() {
            f(*k, v);
        }
    }

    /// Drains every entry in unspecified order.
    pub fn drain(&mut self, mut f: impl FnMut(K, V)) {
        self.len = 0;
        for slot in &mut self.slots {
            if let Some((k, v)) = slot.take() {
                f(k, v);
            }
        }
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.len = 0;
        for slot in &mut self.slots {
            *slot = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: FastMap<u64, u64> = FastMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        assert_eq!(m.remove(1), None);
        for i in 0..1000u64 {
            assert_eq!(m.insert(i * 64, i), None);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i * 64), Some(&i));
        }
        assert_eq!(m.insert(0, 999), Some(0), "replace returns old value");
        for i in 0..1000u64 {
            assert!(m.remove(i * 64).is_some());
        }
        assert!(m.is_empty());
    }

    #[test]
    fn churn_does_not_degrade() {
        // Allocation-like churn: every insert is eventually removed.
        // With tombstones this would degenerate; backward shift keeps
        // clusters tight, which we can only observe functionally here.
        let mut m: FastMap<u64, u32> = FastMap::new();
        for round in 0..50u64 {
            for i in 0..64u64 {
                m.insert(round * 6400 + i * 8, i as u32);
            }
            for i in 0..64u64 {
                assert_eq!(m.remove(round * 6400 + i * 8), Some(i as u32));
            }
        }
        assert!(m.is_empty());
        // The map still behaves after the churn.
        m.insert(42, 7);
        assert_eq!(m.get(42), Some(&7));
    }

    #[test]
    fn backward_shift_preserves_colliding_clusters() {
        // Force collisions by using keys that hash near each other: with
        // a tiny map every key shares one cluster.
        let mut m: FastMap<u64, u64> = FastMap::new();
        let keys: Vec<u64> = (0..7).collect();
        for &k in &keys {
            m.insert(k, k + 100);
        }
        // Remove from the middle of the cluster and verify the rest.
        m.remove(3);
        for &k in &keys {
            if k == 3 {
                assert_eq!(m.get(k), None);
            } else {
                assert_eq!(m.get(k), Some(&(k + 100)), "key {k} lost after shift");
            }
        }
    }

    #[test]
    fn get_or_insert_with_inserts_once() {
        let mut m: FastMap<u64, Vec<u8>> = FastMap::new();
        m.get_or_insert_with(5, || vec![1]).push(2);
        m.get_or_insert_with(5, || panic!("must not re-init")).push(3);
        assert_eq!(m.get(5), Some(&vec![1, 2, 3]));
    }

    #[test]
    fn with_capacity_avoids_regrowth_for_each_and_drain() {
        let mut m: FastMap<u64, u64> = FastMap::with_capacity(100);
        for i in 0..100 {
            m.insert(i, i);
        }
        let mut sum = 0;
        m.for_each(|_, v| sum += *v);
        assert_eq!(sum, (0..100).sum::<u64>());
        let mut drained = 0;
        m.drain(|k, v| {
            assert_eq!(k, v);
            drained += 1;
        });
        assert_eq!(drained, 100);
        assert!(m.is_empty());
        m.insert(1, 1);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
    }

    #[test]
    fn context_keys_work_as_keys() {
        use csod_ctx::{ContextKey, FrameTable};
        let frames = FrameTable::new();
        let mut m: FastMap<ContextKey, u32> = FastMap::new();
        for i in 0..100u64 {
            let k = ContextKey::new(frames.intern(&format!("s{i}")), i * 16);
            m.insert(k, i as u32);
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            let k = ContextKey::new(frames.intern(&format!("s{i}")), i * 16);
            assert_eq!(m.get(k), Some(&(i as u32)));
        }
    }
}
