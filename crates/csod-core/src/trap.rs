//! The structured trap-report pipeline (paper Section III-D, Report
//! Generation).
//!
//! Where [`crate::OverflowReport`] is the human-facing Figure-6 text,
//! [`TrapReport`] is the machine-facing record a production deployment
//! ships to its crash-report backend: the full allocation calling
//! context, the faulting access address, how far past the end of the
//! object it landed, the acting thread, and the object's age — one JSON
//! line per detection, routed through every configured
//! [`RecordSink`](csod_trace::RecordSink).

use crate::report::DetectionMethod;
use crate::sampling::CtxId;
use csod_ctx::{CallingContext, FrameTable};
use csod_trace::{json_escape, RecordSink};
use sim_machine::{AccessKind, ThreadId, VirtAddr};
use std::fmt::Write as _;

/// One structured overflow detection, fully resolved (frame ids already
/// rendered to `file:line` strings) so the record outlives the runtime
/// that produced it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapReport {
    /// Detection path (watchpoint trap, or a canary discovery).
    pub method: DetectionMethod,
    /// Over-read or over-write.
    pub kind: AccessKind,
    /// The thread that performed the access (or found the evidence).
    pub thread: ThreadId,
    /// Dense id of the allocation context.
    pub ctx_id: CtxId,
    /// User-visible start of the overflowed object.
    pub object_start: VirtAddr,
    /// The faulting access address (watchpoint path) or the corrupted
    /// canary word (canary paths).
    pub access_addr: VirtAddr,
    /// Requested size of the object in bytes.
    pub requested_size: u64,
    /// How far past the end of the object the access landed, in bytes
    /// (`access_addr − (object_start + requested_size)`; 0 for a hit on
    /// the first out-of-bounds byte).
    pub offset_past_end: u64,
    /// Age of the object at detection, in virtual nanoseconds since its
    /// allocation.
    pub object_age_ns: u64,
    /// Virtual time of the detection, nanoseconds since boot.
    pub at_ns: u64,
    /// Full allocation calling context, innermost frame first, each
    /// frame as `file:line`.
    pub alloc_context: Vec<String>,
    /// Calling context of the overflowing statement; empty on the
    /// canary paths, which cannot know it.
    pub overflow_site: Vec<String>,
}

impl TrapReport {
    /// Stable machine tag for the detection method.
    pub fn method_tag(method: DetectionMethod) -> &'static str {
        match method {
            DetectionMethod::Watchpoint => "watchpoint",
            DetectionMethod::CanaryOnFree => "canary_free",
            DetectionMethod::CanaryAtExit => "canary_exit",
        }
    }

    /// Resolves a calling context into `file:line` strings, innermost
    /// frame first.
    pub fn resolve_context(ctx: &CallingContext, frames: &FrameTable) -> Vec<String> {
        ctx.iter().map(|id| frames.resolve(id)).collect()
    }

    /// Serializes the report as one JSON object on a single line.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        let _ = write!(
            out,
            "{{\"method\":\"{}\",\"kind\":\"{}\",\"thread\":{},\"ctx_id\":{},\
             \"object_start\":\"{:#x}\",\"access_addr\":\"{:#x}\",\
             \"requested_size\":{},\"offset_past_end\":{},\
             \"object_age_ns\":{},\"at_ns\":{}",
            Self::method_tag(self.method),
            match self.kind {
                AccessKind::Read => "read",
                AccessKind::Write => "write",
            },
            self.thread.as_u32(),
            self.ctx_id.as_u32(),
            self.object_start.as_u64(),
            self.access_addr.as_u64(),
            self.requested_size,
            self.offset_past_end,
            self.object_age_ns,
            self.at_ns,
        );
        out.push_str(",\"alloc_context\":[");
        for (i, frame) in self.alloc_context.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(frame));
        }
        out.push_str("],\"overflow_site\":[");
        for (i, frame) in self.overflow_site.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", json_escape(frame));
        }
        out.push_str("]}");
        out
    }
}

/// Routes every [`TrapReport`] to an in-memory store (always) and any
/// number of registered line sinks (JSONL file, stderr, test memory
/// sinks).
///
/// A stream written through this pipeline ends with one terminator
/// record — [`ReportPipeline::terminator_line`] — emitted by
/// [`ReportPipeline::finish_stream`] at orderly shutdown and by the
/// `Drop` impl otherwise (including panic unwinding). A consumer that
/// reads a stream with no terminator knows the writer died
/// mid-execution; a terminator whose `records` count disagrees with the
/// parsed lines reveals records lost to truncation.
#[derive(Debug, Default)]
pub struct ReportPipeline {
    reports: Vec<TrapReport>,
    sinks: Vec<Box<dyn RecordSink>>,
    terminated: bool,
}

impl ReportPipeline {
    /// A pipeline with no sinks: reports are only stored in memory.
    pub fn new() -> ReportPipeline {
        ReportPipeline::default()
    }

    /// Registers a sink; every future report is also written to it as a
    /// JSON line.
    pub fn add_sink(&mut self, sink: Box<dyn RecordSink>) {
        self.sinks.push(sink);
    }

    /// Accepts one report: serializes it to every sink and stores the
    /// structured record.
    pub fn emit(&mut self, report: TrapReport) {
        if !self.sinks.is_empty() {
            let line = report.to_json_line();
            for sink in &mut self.sinks {
                sink.write_line(&line);
            }
        }
        self.reports.push(report);
    }

    /// Every report emitted so far, in order.
    pub fn reports(&self) -> &[TrapReport] {
        &self.reports
    }

    /// Number of reports emitted.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when nothing was emitted.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The stream-end record for a stream of `records` reports: a JSON
    /// line a reader can both recognize and use to audit completeness.
    pub fn terminator_line(records: u64) -> String {
        format!("{{\"csod_stream_end\":true,\"records\":{records}}}")
    }

    /// Flushes every sink (end of run).
    pub fn flush(&mut self) {
        for sink in &mut self.sinks {
            sink.flush();
        }
    }

    /// Ends the stream: writes the terminator record to every sink and
    /// flushes. Idempotent, so an orderly [`finish`](Self::finish_stream)
    /// followed by `Drop` emits exactly one terminator.
    pub fn finish_stream(&mut self) {
        if self.terminated {
            return;
        }
        self.terminated = true;
        let line = Self::terminator_line(self.reports.len() as u64);
        for sink in &mut self.sinks {
            sink.write_line(&line);
        }
        self.flush();
    }
}

impl Drop for ReportPipeline {
    fn drop(&mut self) {
        // A runtime torn down without finish() — a panic unwinding the
        // owner, an early return — still terminates its streams, so
        // readers can tell "writer finished" from "writer vanished".
        self.finish_stream();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_trace::MemorySink;

    fn sample() -> TrapReport {
        TrapReport {
            method: DetectionMethod::Watchpoint,
            kind: AccessKind::Write,
            thread: ThreadId::MAIN,
            ctx_id: CtxId::from_index(7),
            object_start: VirtAddr::new(0x1000),
            access_addr: VirtAddr::new(0x1044),
            requested_size: 64,
            offset_past_end: 4,
            object_age_ns: 1_500,
            at_ns: 9_000,
            alloc_context: vec!["alloc.c:5".into(), "main.c:2".into()],
            overflow_site: vec!["memcpy.S:81".into()],
        }
    }

    #[test]
    fn json_line_carries_the_papers_report_fields() {
        let line = sample().to_json_line();
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains('\n'));
        assert!(line.contains("\"method\":\"watchpoint\""));
        assert!(line.contains("\"kind\":\"write\""));
        assert!(line.contains("\"object_start\":\"0x1000\""));
        assert!(line.contains("\"access_addr\":\"0x1044\""));
        assert!(line.contains("\"offset_past_end\":4"));
        assert!(line.contains("\"object_age_ns\":1500"));
        assert!(line.contains("\"alloc_context\":[\"alloc.c:5\",\"main.c:2\"]"));
        assert!(line.contains("\"overflow_site\":[\"memcpy.S:81\"]"));
    }

    #[test]
    fn pipeline_stores_and_fans_out() {
        let mem = MemorySink::new();
        let mut pipeline = ReportPipeline::new();
        pipeline.add_sink(Box::new(mem.handle()));
        pipeline.emit(sample());
        pipeline.emit(TrapReport {
            method: DetectionMethod::CanaryOnFree,
            overflow_site: Vec::new(),
            ..sample()
        });
        pipeline.flush();
        assert_eq!(pipeline.len(), 2);
        assert!(!pipeline.is_empty());
        assert_eq!(mem.len(), 2);
        assert!(mem.lines()[1].contains("\"method\":\"canary_free\""));
        assert!(mem.lines()[1].contains("\"overflow_site\":[]"));
        assert_eq!(pipeline.reports()[0].ctx_id, CtxId::from_index(7));
    }

    #[test]
    fn finish_stream_terminates_exactly_once() {
        let mem = MemorySink::new();
        {
            let mut pipeline = ReportPipeline::new();
            pipeline.add_sink(Box::new(mem.handle()));
            pipeline.emit(sample());
            pipeline.finish_stream();
            pipeline.finish_stream(); // idempotent
                                      // Drop fires here and must not add a second terminator.
        }
        let lines = mem.lines();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[1], ReportPipeline::terminator_line(1));
    }

    #[test]
    fn dropped_pipeline_terminates_its_stream() {
        let mem = MemorySink::new();
        let result = std::panic::catch_unwind(|| {
            let mut pipeline = ReportPipeline::new();
            pipeline.add_sink(Box::new(mem.handle()));
            pipeline.emit(sample());
            panic!("owner unwinds");
        });
        assert!(result.is_err());
        let lines = mem.lines();
        assert_eq!(lines.len(), 2, "report + terminator survive the panic");
        assert!(lines[1].contains("\"csod_stream_end\":true"));
    }

    #[test]
    fn method_tags_are_distinct() {
        let tags = [
            TrapReport::method_tag(DetectionMethod::Watchpoint),
            TrapReport::method_tag(DetectionMethod::CanaryOnFree),
            TrapReport::method_tag(DetectionMethod::CanaryAtExit),
        ];
        let set: std::collections::HashSet<_> = tags.into_iter().collect();
        assert_eq!(set.len(), 3);
    }
}
