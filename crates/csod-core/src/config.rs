//! Runtime configuration.

use crate::degradation::DegradationParams;
use crate::policy::ReplacementPolicy;
use csod_rng::PPM_SCALE;
use sim_machine::VirtDuration;
use std::fmt;
use std::path::PathBuf;

/// How watchpoints reach the hardware debug registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WatchBackend {
    /// `perf_event_open` within the same process — the paper's choice
    /// (Section II-A), five syscalls per thread per install.
    #[default]
    PerfEvent,
    /// Traditional `ptrace` from a helper process — works, but each
    /// install pays attach/poke/detach round trips (the overhead that
    /// motivated the perf-event route).
    Ptrace,
    /// The combined custom syscall the paper proposes as future work
    /// (Section V-B): one kernel entry installs the watchpoint on every
    /// alive thread.
    CombinedSyscall,
}

impl fmt::Display for WatchBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchBackend::PerfEvent => f.write_str("perf_event_open"),
            WatchBackend::Ptrace => f.write_str("ptrace"),
            WatchBackend::CombinedSyscall => f.write_str("combined-syscall"),
        }
    }
}

/// The adaptive-sampling constants of paper Section III-B2 and IV-A.
///
/// "These percentages are pre-defined macros used at compilation time,
/// which could be further adjusted based on the behavior of programs" —
/// here they are plain fields so the `ablation_sampling` harness can
/// sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingParams {
    /// Initial probability of every new calling context (paper: 50 %).
    pub initial_ppm: u32,
    /// Degradation applied on *every* allocation from a context,
    /// watched or not (paper: 0.001 %).
    pub degrade_per_alloc_ppm: u32,
    /// Lower bound no degradation can cross (paper: 0.001 %).
    pub floor_ppm: u32,
    /// Allocation count within [`SamplingParams::burst_window`] beyond
    /// which the context is throttled (paper: 5,000).
    pub burst_threshold: u32,
    /// The burst-detection window (paper: 10 seconds).
    pub burst_window: VirtDuration,
    /// Probability while throttled (paper: 0.0001 %).
    pub burst_ppm: u32,
    /// Reviving boost applied to floor-level contexts after a quiet
    /// period (paper Section IV-A: 0.01 %).
    pub revive_ppm: u32,
    /// How long a context must sit at the floor before it becomes
    /// eligible for reviving.
    pub revive_period: VirtDuration,
    /// Chance per allocation that an eligible context is actually
    /// revived ("augmented randomly").
    pub revive_chance_ppm: u32,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            initial_ppm: PPM_SCALE / 2,  // 50%
            degrade_per_alloc_ppm: 10,   // 0.001%
            floor_ppm: 10,               // 0.001%
            burst_threshold: 5_000,
            burst_window: VirtDuration::from_secs(10),
            burst_ppm: 1, // 0.0001%
            revive_ppm: 100, // 0.01%
            revive_period: VirtDuration::from_secs(10),
            revive_chance_ppm: PPM_SCALE / 100, // 1% per allocation once eligible
        }
    }
}

/// Full CSOD configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsodConfig {
    /// Watchpoint replacement policy.
    pub policy: ReplacementPolicy,
    /// How watchpoints are installed on the hardware.
    pub backend: WatchBackend,
    /// Watchpoint slots to manage — 4 on real x86-64. Values above 4
    /// require a machine built with
    /// [`sim_machine::Machine::with_debug_registers`] (the register-count
    /// ablation).
    pub watchpoint_slots: usize,
    /// Enable the evidence-based over-write detection of Section IV-B
    /// (32-byte header + 8-byte canary, checked on free and at exit).
    pub evidence: bool,
    /// Adaptive-sampling constants.
    pub sampling: SamplingParams,
    /// Graceful-degradation knobs for a misbehaving watchpoint backend
    /// (retry backoff, context quarantine, canary-only fallback).
    pub degradation: DegradationParams,
    /// Age after which an installed watchpoint's probability is halved
    /// when competing against a replacement candidate (paper: 10 s).
    pub watch_age_decay: VirtDuration,
    /// Seed for the per-thread sampling generators.
    pub seed: u64,
    /// Where to persist contexts with observed overflow evidence so the
    /// next execution watches them from the start (Section IV-B).
    /// `None` keeps the evidence in memory only.
    pub evidence_path: Option<PathBuf>,
    /// Where to write the rendered bug reports at termination (the
    /// production tool's log file). `None` keeps reports in memory only.
    pub report_path: Option<PathBuf>,
}

impl Default for CsodConfig {
    fn default() -> Self {
        CsodConfig {
            policy: ReplacementPolicy::NearFifo,
            backend: WatchBackend::PerfEvent,
            watchpoint_slots: 4,
            evidence: true,
            sampling: SamplingParams::default(),
            degradation: DegradationParams::default(),
            watch_age_decay: VirtDuration::from_secs(10),
            seed: 0xC50D,
            evidence_path: None,
            report_path: None,
        }
    }
}

impl CsodConfig {
    /// The paper's "CSOD w/o Evidence" configuration (Figure 7).
    pub fn without_evidence() -> Self {
        CsodConfig {
            evidence: false,
            ..CsodConfig::default()
        }
    }

    /// Convenience: default configuration with the given policy.
    pub fn with_policy(policy: ReplacementPolicy) -> Self {
        CsodConfig {
            policy,
            ..CsodConfig::default()
        }
    }

    /// Convenience: default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        CsodConfig {
            seed,
            ..CsodConfig::default()
        }
    }

    /// Checks the configuration for internally inconsistent values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.watchpoint_slots == 0 {
            return Err("watchpoint_slots must be at least 1".into());
        }
        let s = &self.sampling;
        if s.initial_ppm > PPM_SCALE {
            return Err(format!("initial probability {} ppm exceeds 100%", s.initial_ppm));
        }
        if s.floor_ppm == 0 {
            return Err("floor probability must be positive or contexts die forever".into());
        }
        if s.floor_ppm > s.initial_ppm {
            return Err(format!(
                "floor ({} ppm) above the initial probability ({} ppm)",
                s.floor_ppm, s.initial_ppm
            ));
        }
        if s.burst_ppm > s.floor_ppm {
            return Err(format!(
                "burst throttle ({} ppm) above the floor ({} ppm) would make bursting a reward",
                s.burst_ppm, s.floor_ppm
            ));
        }
        if s.revive_ppm < s.floor_ppm {
            return Err(format!(
                "reviving to {} ppm below the floor ({} ppm) is a no-op",
                s.revive_ppm, s.floor_ppm
            ));
        }
        let d = &self.degradation;
        if d.degrade_threshold == 0 {
            return Err("a degrade threshold of 0 would start in canary-only mode".into());
        }
        if d.quarantine_threshold == 0 {
            return Err("a quarantine threshold of 0 would bench contexts pre-emptively".into());
        }
        if d.max_backoff < d.retry_backoff {
            return Err(format!(
                "max backoff ({} ns) below the initial backoff ({} ns)",
                d.max_backoff.as_nanos(),
                d.retry_backoff.as_nanos()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = SamplingParams::default();
        assert_eq!(p.initial_ppm, 500_000); // 50%
        assert_eq!(p.degrade_per_alloc_ppm, 10); // 0.001%
        assert_eq!(p.floor_ppm, 10); // 0.001%
        assert_eq!(p.burst_threshold, 5_000);
        assert_eq!(p.burst_window, VirtDuration::from_secs(10));
        assert_eq!(p.burst_ppm, 1); // 0.0001%
        assert_eq!(p.revive_ppm, 100); // 0.01%
        let c = CsodConfig::default();
        assert!(c.evidence);
        assert_eq!(c.policy, ReplacementPolicy::NearFifo);
        assert_eq!(c.watch_age_decay, VirtDuration::from_secs(10));
    }

    #[test]
    fn backend_default_and_display() {
        assert_eq!(CsodConfig::default().backend, WatchBackend::PerfEvent);
        assert_eq!(WatchBackend::Ptrace.to_string(), "ptrace");
        assert_eq!(WatchBackend::CombinedSyscall.to_string(), "combined-syscall");
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_nonsense() {
        assert_eq!(CsodConfig::default().validate(), Ok(()));
        let broken = CsodConfig {
            watchpoint_slots: 0,
            ..CsodConfig::default()
        };
        assert!(broken.validate().is_err());
        let with_sampling = |sampling: SamplingParams| CsodConfig {
            sampling,
            ..CsodConfig::default()
        };
        let zero_floor = with_sampling(SamplingParams {
            floor_ppm: 0,
            ..SamplingParams::default()
        });
        assert!(zero_floor.validate().is_err());
        let over_unity = with_sampling(SamplingParams {
            initial_ppm: 2_000_000,
            ..SamplingParams::default()
        });
        assert!(over_unity.validate().unwrap_err().contains("100%"));
        let high_burst = with_sampling(SamplingParams {
            burst_ppm: 500,
            ..SamplingParams::default()
        });
        assert!(high_burst.validate().unwrap_err().contains("burst"));
        let dead_revive = with_sampling(SamplingParams {
            revive_ppm: 1,
            ..SamplingParams::default()
        });
        assert!(dead_revive.validate().unwrap_err().contains("no-op"));
        let with_degradation = |degradation: DegradationParams| CsodConfig {
            degradation,
            ..CsodConfig::default()
        };
        let zero_degrade = with_degradation(DegradationParams {
            degrade_threshold: 0,
            ..DegradationParams::default()
        });
        assert!(zero_degrade.validate().unwrap_err().contains("canary-only"));
        let zero_quarantine = with_degradation(DegradationParams {
            quarantine_threshold: 0,
            ..DegradationParams::default()
        });
        assert!(zero_quarantine.validate().is_err());
        let inverted_backoff = with_degradation(DegradationParams {
            max_backoff: VirtDuration::from_nanos(1),
            ..DegradationParams::default()
        });
        assert!(inverted_backoff.validate().unwrap_err().contains("backoff"));
    }

    #[test]
    fn convenience_constructors() {
        assert!(!CsodConfig::without_evidence().evidence);
        assert_eq!(
            CsodConfig::with_policy(ReplacementPolicy::Naive).policy,
            ReplacementPolicy::Naive
        );
        assert_eq!(CsodConfig::with_seed(7).seed, 7);
    }
}
