//! Runtime configuration.

use crate::degradation::DegradationParams;
use crate::policy::ReplacementPolicy;
use csod_ctx::ContextKey;
use csod_rng::PPM_SCALE;
use sim_machine::VirtDuration;
use std::collections::HashMap;
use std::fmt;
use std::path::PathBuf;

/// The paper's pre-defined sampling macros (Sections III-B2 and IV-A) as
/// shared named constants.
///
/// "These percentages are pre-defined macros used at compilation time" —
/// every crate that needs one of them (the Sampling Management Unit's
/// defaults, the `ablation_sampling` sweep labels, the Sampler baseline's
/// comparable-budget tuning) must reference these constants instead of
/// re-deriving the numbers, so the crates cannot drift apart.
pub mod paper {
    use csod_rng::PPM_SCALE;
    use sim_machine::VirtDuration;

    /// Initial watch probability of every new calling context: 50 %.
    pub const INITIAL_WATCH_PPM: u32 = PPM_SCALE / 2;
    /// Degradation applied on every allocation from a context: 0.001 %.
    pub const DEGRADE_PER_ALLOC_PPM: u32 = 10;
    /// Lower bound no degradation can cross: 0.001 %.
    pub const FLOOR_PPM: u32 = 10;
    /// Allocations within [`BURST_WINDOW`] beyond which a context is
    /// throttled: 5,000.
    pub const BURST_ALLOC_THRESHOLD: u32 = 5_000;
    /// The burst-detection window: 10 seconds.
    pub const BURST_WINDOW: VirtDuration = VirtDuration::from_secs(10);
    /// Probability while throttled: 0.0001 %.
    pub const BURST_THROTTLE_PPM: u32 = 1;
    /// Reviving boost applied to floor-level contexts (Section IV-A):
    /// 0.01 %.
    pub const REVIVE_PPM: u32 = 100;
    /// Quiet period before a floor-level context may be revived.
    pub const REVIVE_PERIOD: VirtDuration = VirtDuration::from_secs(10);
}

/// How watchpoints reach the hardware debug registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WatchBackend {
    /// `perf_event_open` within the same process — the paper's choice
    /// (Section II-A), five syscalls per thread per install.
    #[default]
    PerfEvent,
    /// Traditional `ptrace` from a helper process — works, but each
    /// install pays attach/poke/detach round trips (the overhead that
    /// motivated the perf-event route).
    Ptrace,
    /// The combined custom syscall the paper proposes as future work
    /// (Section V-B): one kernel entry installs the watchpoint on every
    /// alive thread.
    CombinedSyscall,
}

impl fmt::Display for WatchBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatchBackend::PerfEvent => f.write_str("perf_event_open"),
            WatchBackend::Ptrace => f.write_str("ptrace"),
            WatchBackend::CombinedSyscall => f.write_str("combined-syscall"),
        }
    }
}

/// The adaptive-sampling constants of paper Section III-B2 and IV-A.
///
/// "These percentages are pre-defined macros used at compilation time,
/// which could be further adjusted based on the behavior of programs" —
/// here they are plain fields so the `ablation_sampling` harness can
/// sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingParams {
    /// Initial probability of every new calling context (paper: 50 %).
    pub initial_ppm: u32,
    /// Degradation applied on *every* allocation from a context,
    /// watched or not (paper: 0.001 %).
    pub degrade_per_alloc_ppm: u32,
    /// Lower bound no degradation can cross (paper: 0.001 %).
    pub floor_ppm: u32,
    /// Allocation count within [`SamplingParams::burst_window`] beyond
    /// which the context is throttled (paper: 5,000).
    pub burst_threshold: u32,
    /// The burst-detection window (paper: 10 seconds).
    pub burst_window: VirtDuration,
    /// Probability while throttled (paper: 0.0001 %).
    pub burst_ppm: u32,
    /// Reviving boost applied to floor-level contexts after a quiet
    /// period (paper Section IV-A: 0.01 %).
    pub revive_ppm: u32,
    /// How long a context must sit at the floor before it becomes
    /// eligible for reviving.
    pub revive_period: VirtDuration,
    /// Chance per allocation that an eligible context is actually
    /// revived ("augmented randomly").
    pub revive_chance_ppm: u32,
}

impl SamplingParams {
    /// These parameters with the initial watch probability multiplied by
    /// `scale_ppm / PPM_SCALE` — the hook a fleet-wide budget
    /// coordinator uses to shed per-process sampling smoothly under
    /// overload instead of dropping reports.
    ///
    /// The scaled probability never drops below [`Self::floor_ppm`] (so
    /// [`CsodConfig::validate`] keeps holding and every context retains
    /// a non-zero chance), and evidence-pinned contexts are unaffected
    /// by construction — pinning overrides the initial probability —
    /// which keeps per-unique-bug detection probability high while the
    /// aggregate trap volume comes down.
    #[must_use]
    pub fn scaled(mut self, scale_ppm: u32) -> SamplingParams {
        let scale = u64::from(scale_ppm.min(PPM_SCALE));
        let scaled = u64::from(self.initial_ppm) * scale / u64::from(PPM_SCALE);
        let scaled = u32::try_from(scaled).unwrap_or(u32::MAX);
        self.initial_ppm = scaled.max(self.floor_ppm.max(1));
        self
    }
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            initial_ppm: paper::INITIAL_WATCH_PPM,
            degrade_per_alloc_ppm: paper::DEGRADE_PER_ALLOC_PPM,
            floor_ppm: paper::FLOOR_PPM,
            burst_threshold: paper::BURST_ALLOC_THRESHOLD,
            burst_window: paper::BURST_WINDOW,
            burst_ppm: paper::BURST_THROTTLE_PPM,
            revive_ppm: paper::REVIVE_PPM,
            revive_period: paper::REVIVE_PERIOD,
            revive_chance_ppm: PPM_SCALE / 100, // 1% per allocation once eligible
        }
    }
}

/// Tuning knobs for the per-allocation fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastPathParams {
    /// Sampling decisions per context a thread may serve from its
    /// decision cache before consulting the shared table again.
    /// `1` disables memoization (every decision takes the table lock —
    /// the pre-cache behaviour, kept as a bench comparison mode).
    /// Probability-changing events invalidate caches immediately
    /// regardless of this interval; it only bounds how long plain
    /// degradation drift can accumulate (`refresh × 10 ppm` with the
    /// paper constants).
    pub decision_cache_refresh: u32,
    /// Defer the Figure-4 `ioctl`/`close` teardown of freed watchpoints
    /// into batches drained at `poll()`/install/quiesce points, instead
    /// of paying two syscalls per descriptor on the free path itself.
    /// Disable for the paper-faithful synchronous teardown.
    pub deferred_teardown: bool,
    /// Resolve firing watchpoints through a hashed fd→slot index instead
    /// of the paper's one-by-one descriptor comparison (Section III-D1).
    /// Disable for the paper-faithful linear scan.
    pub fd_index: bool,
}

impl FastPathParams {
    /// The default refresh interval: 64 decisions per context between
    /// authoritative table reads, a worst-case drift of 640 ppm against
    /// an initial probability of 500,000 ppm.
    pub const DEFAULT_REFRESH: u32 = 64;

    /// Parameters with the decision cache disabled (`refresh == 1`).
    pub fn uncached() -> Self {
        FastPathParams {
            decision_cache_refresh: 1,
            ..FastPathParams::default()
        }
    }

    /// Parameters with the paper-faithful free path: synchronous per-fd
    /// Figure-4 teardown and linear trap dispatch (Section III-D1). Used
    /// by the parity suites and as the bench comparison mode.
    pub fn synchronous_teardown() -> Self {
        FastPathParams {
            deferred_teardown: false,
            fd_index: false,
            ..FastPathParams::default()
        }
    }
}

impl Default for FastPathParams {
    fn default() -> Self {
        FastPathParams {
            decision_cache_refresh: Self::DEFAULT_REFRESH,
            deferred_teardown: true,
            fd_index: true,
        }
    }
}

/// Static risk verdict for one allocation calling context, produced by
/// the `csod-analyze` pre-pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RiskClass {
    /// Every reachable access is provably within the object's bounds —
    /// the sampler may start the context at the probability floor.
    ProvenSafe,
    /// Some reachable access can reach or exceed the object size — the
    /// sampler boosts the context and exempts it from burst throttling.
    Suspicious,
    /// The analysis lost precision (widened interval, ambiguous pointer
    /// binding); the paper's default schedule applies unchanged.
    Unknown,
}

/// Error parsing a [`RiskClass`] from its `Display` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRiskClassError(String);

impl fmt::Display for ParseRiskClassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown risk class {:?}", self.0)
    }
}

impl std::error::Error for ParseRiskClassError {}

impl std::str::FromStr for RiskClass {
    type Err = ParseRiskClassError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "proven-safe" => Ok(RiskClass::ProvenSafe),
            "suspicious" => Ok(RiskClass::Suspicious),
            "unknown" => Ok(RiskClass::Unknown),
            other => Err(ParseRiskClassError(other.to_owned())),
        }
    }
}

impl fmt::Display for RiskClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RiskClass::ProvenSafe => f.write_str("proven-safe"),
            RiskClass::Suspicious => f.write_str("suspicious"),
            RiskClass::Unknown => f.write_str("unknown"),
        }
    }
}

/// Per-context risk priors fed into the Sampling Management Unit from a
/// static pre-analysis (`csod-analyze`'s `RiskReport::to_priors`).
///
/// An empty table (the default) leaves the runtime behaviour exactly as
/// the paper describes: every context starts at
/// [`paper::INITIAL_WATCH_PPM`] and follows the adaptive schedule.
/// With priors, [`RiskClass::ProvenSafe`] contexts start at the floor
/// and skip the availability bypass, [`RiskClass::Suspicious`] contexts
/// start at [`AnalysisPriors::suspicious_ppm`] and are exempt from burst
/// throttling, and [`RiskClass::Unknown`] contexts are untouched.
/// Evidence pinning (Section IV-B) always outranks a prior.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AnalysisPriors {
    /// Static verdict per allocation calling context.
    pub classes: HashMap<ContextKey, RiskClass>,
    /// Initial probability for [`RiskClass::Suspicious`] contexts, in
    /// ppm. Must exceed the 50 % default to mean anything.
    pub suspicious_ppm: u32,
}

impl AnalysisPriors {
    /// The default boost for suspicious contexts: 90 %.
    pub const DEFAULT_SUSPICIOUS_PPM: u32 = PPM_SCALE / 10 * 9;

    /// An empty prior table (no static analysis ran).
    pub fn none() -> Self {
        AnalysisPriors::default()
    }

    /// Builds a prior table from per-context verdicts with the default
    /// suspicious boost.
    pub fn from_classes(classes: impl IntoIterator<Item = (ContextKey, RiskClass)>) -> Self {
        AnalysisPriors {
            classes: classes.into_iter().collect(),
            suspicious_ppm: Self::DEFAULT_SUSPICIOUS_PPM,
        }
    }

    /// `true` if no context has a verdict.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// The verdict recorded for `key`, if any.
    pub fn class_of(&self, key: ContextKey) -> Option<RiskClass> {
        self.classes.get(&key).copied()
    }

    /// Number of contexts carrying each verdict:
    /// `(proven_safe, suspicious, unknown)`.
    pub fn census(&self) -> (usize, usize, usize) {
        let mut safe = 0;
        let mut sus = 0;
        let mut unknown = 0;
        for class in self.classes.values() {
            match class {
                RiskClass::ProvenSafe => safe += 1,
                RiskClass::Suspicious => sus += 1,
                RiskClass::Unknown => unknown += 1,
            }
        }
        (safe, sus, unknown)
    }
}

/// Full CSOD configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsodConfig {
    /// Watchpoint replacement policy.
    pub policy: ReplacementPolicy,
    /// How watchpoints are installed on the hardware.
    pub backend: WatchBackend,
    /// Watchpoint slots to manage — 4 on real x86-64. Values above 4
    /// require a machine built with
    /// [`sim_machine::Machine::with_debug_registers`] (the register-count
    /// ablation).
    pub watchpoint_slots: usize,
    /// Enable the evidence-based over-write detection of Section IV-B
    /// (32-byte header + 8-byte canary, checked on free and at exit).
    pub evidence: bool,
    /// Adaptive-sampling constants.
    pub sampling: SamplingParams,
    /// Allocation fast-path tuning (per-thread decision caches).
    pub fast_path: FastPathParams,
    /// Per-context risk priors from the `csod-analyze` static pre-pass.
    /// Empty by default — the purely dynamic schedule of the paper.
    pub priors: AnalysisPriors,
    /// Graceful-degradation knobs for a misbehaving watchpoint backend
    /// (retry backoff, context quarantine, canary-only fallback).
    pub degradation: DegradationParams,
    /// Age after which an installed watchpoint's probability is halved
    /// when competing against a replacement candidate (paper: 10 s).
    pub watch_age_decay: VirtDuration,
    /// Seed for the per-thread sampling generators.
    pub seed: u64,
    /// Where to persist contexts with observed overflow evidence so the
    /// next execution watches them from the start (Section IV-B).
    /// `None` keeps the evidence in memory only.
    pub evidence_path: Option<PathBuf>,
    /// Where to write the rendered bug reports at termination (the
    /// production tool's log file). `None` keeps reports in memory only.
    pub report_path: Option<PathBuf>,
    /// Observability: event tracer and trap-report sink wiring.
    pub trace: TraceParams,
}

/// Observability knobs: the per-thread event rings and where structured
/// trap reports are routed. Orthogonal to the `trace-off` cargo
/// feature — that removes the tracer at compile time, while
/// [`TraceParams::events`] switches it at run time (the tracing
/// benchmark uses the latter to measure both states in one binary).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParams {
    /// Emit runtime events into the per-thread rings. Off: `emit` sites
    /// cost one branch.
    pub events: bool,
    /// Per-thread ring capacity in events (rounded up to a power of
    /// two).
    pub ring_capacity: usize,
    /// Append each structured trap report as a JSON line to this file,
    /// in addition to the always-on in-memory record store.
    pub trap_report_path: Option<PathBuf>,
    /// Also echo each structured trap report to stderr.
    pub trap_report_stderr: bool,
}

impl Default for TraceParams {
    fn default() -> Self {
        TraceParams {
            events: true,
            ring_capacity: csod_trace::DEFAULT_RING_CAPACITY,
            trap_report_path: None,
            trap_report_stderr: false,
        }
    }
}

impl TraceParams {
    /// Tracing disabled at run time (rings still allocated lazily, so
    /// this costs one branch per emit site and nothing else).
    pub fn disabled() -> Self {
        TraceParams {
            events: false,
            ..TraceParams::default()
        }
    }
}

impl Default for CsodConfig {
    fn default() -> Self {
        CsodConfig {
            policy: ReplacementPolicy::NearFifo,
            backend: WatchBackend::PerfEvent,
            watchpoint_slots: 4,
            evidence: true,
            sampling: SamplingParams::default(),
            fast_path: FastPathParams::default(),
            priors: AnalysisPriors::none(),
            degradation: DegradationParams::default(),
            watch_age_decay: VirtDuration::from_secs(10),
            seed: 0xC50D,
            evidence_path: None,
            report_path: None,
            trace: TraceParams::default(),
        }
    }
}

impl CsodConfig {
    /// The paper's "CSOD w/o Evidence" configuration (Figure 7).
    pub fn without_evidence() -> Self {
        CsodConfig {
            evidence: false,
            ..CsodConfig::default()
        }
    }

    /// Convenience: default configuration with the given policy.
    pub fn with_policy(policy: ReplacementPolicy) -> Self {
        CsodConfig {
            policy,
            ..CsodConfig::default()
        }
    }

    /// Convenience: default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        CsodConfig {
            seed,
            ..CsodConfig::default()
        }
    }

    /// Convenience: default configuration primed with the given static
    /// analysis verdicts.
    pub fn with_priors(priors: AnalysisPriors) -> Self {
        CsodConfig {
            priors,
            ..CsodConfig::default()
        }
    }

    /// Checks the configuration for internally inconsistent values.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.watchpoint_slots == 0 {
            return Err("watchpoint_slots must be at least 1".into());
        }
        let s = &self.sampling;
        if s.initial_ppm > PPM_SCALE {
            return Err(format!("initial probability {} ppm exceeds 100%", s.initial_ppm));
        }
        if s.floor_ppm == 0 {
            return Err("floor probability must be positive or contexts die forever".into());
        }
        if s.floor_ppm > s.initial_ppm {
            return Err(format!(
                "floor ({} ppm) above the initial probability ({} ppm)",
                s.floor_ppm, s.initial_ppm
            ));
        }
        if s.burst_ppm > s.floor_ppm {
            return Err(format!(
                "burst throttle ({} ppm) above the floor ({} ppm) would make bursting a reward",
                s.burst_ppm, s.floor_ppm
            ));
        }
        if s.revive_ppm < s.floor_ppm {
            return Err(format!(
                "reviving to {} ppm below the floor ({} ppm) is a no-op",
                s.revive_ppm, s.floor_ppm
            ));
        }
        if self.fast_path.decision_cache_refresh == 0 {
            return Err(
                "a decision-cache refresh of 0 would never consult the sampler; use 1 to disable caching"
                    .into(),
            );
        }
        if !self.priors.is_empty() {
            if self.priors.suspicious_ppm > PPM_SCALE {
                return Err(format!(
                    "suspicious prior {} ppm exceeds 100%",
                    self.priors.suspicious_ppm
                ));
            }
            if self.priors.suspicious_ppm <= s.initial_ppm {
                return Err(format!(
                    "suspicious prior ({} ppm) must exceed the initial probability ({} ppm) to be a boost",
                    self.priors.suspicious_ppm, s.initial_ppm
                ));
            }
        }
        let d = &self.degradation;
        if d.degrade_threshold == 0 {
            return Err("a degrade threshold of 0 would start in canary-only mode".into());
        }
        if d.quarantine_threshold == 0 {
            return Err("a quarantine threshold of 0 would bench contexts pre-emptively".into());
        }
        if d.max_backoff < d.retry_backoff {
            return Err(format!(
                "max backoff ({} ns) below the initial backoff ({} ns)",
                d.max_backoff.as_nanos(),
                d.retry_backoff.as_nanos()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let p = SamplingParams::default();
        assert_eq!(p.initial_ppm, 500_000); // 50%
        assert_eq!(p.degrade_per_alloc_ppm, 10); // 0.001%
        assert_eq!(p.floor_ppm, 10); // 0.001%
        assert_eq!(p.burst_threshold, 5_000);
        assert_eq!(p.burst_window, VirtDuration::from_secs(10));
        assert_eq!(p.burst_ppm, 1); // 0.0001%
        assert_eq!(p.revive_ppm, 100); // 0.01%
        let c = CsodConfig::default();
        assert!(c.evidence);
        assert_eq!(c.policy, ReplacementPolicy::NearFifo);
        assert_eq!(c.watch_age_decay, VirtDuration::from_secs(10));
    }

    #[test]
    fn backend_default_and_display() {
        assert_eq!(CsodConfig::default().backend, WatchBackend::PerfEvent);
        assert_eq!(WatchBackend::Ptrace.to_string(), "ptrace");
        assert_eq!(WatchBackend::CombinedSyscall.to_string(), "combined-syscall");
    }

    #[test]
    fn validate_accepts_defaults_and_rejects_nonsense() {
        assert_eq!(CsodConfig::default().validate(), Ok(()));
        let broken = CsodConfig {
            watchpoint_slots: 0,
            ..CsodConfig::default()
        };
        assert!(broken.validate().is_err());
        let with_sampling = |sampling: SamplingParams| CsodConfig {
            sampling,
            ..CsodConfig::default()
        };
        let zero_floor = with_sampling(SamplingParams {
            floor_ppm: 0,
            ..SamplingParams::default()
        });
        assert!(zero_floor.validate().is_err());
        let over_unity = with_sampling(SamplingParams {
            initial_ppm: 2_000_000,
            ..SamplingParams::default()
        });
        assert!(over_unity.validate().unwrap_err().contains("100%"));
        let high_burst = with_sampling(SamplingParams {
            burst_ppm: 500,
            ..SamplingParams::default()
        });
        assert!(high_burst.validate().unwrap_err().contains("burst"));
        let dead_revive = with_sampling(SamplingParams {
            revive_ppm: 1,
            ..SamplingParams::default()
        });
        assert!(dead_revive.validate().unwrap_err().contains("no-op"));
        let with_degradation = |degradation: DegradationParams| CsodConfig {
            degradation,
            ..CsodConfig::default()
        };
        let zero_degrade = with_degradation(DegradationParams {
            degrade_threshold: 0,
            ..DegradationParams::default()
        });
        assert!(zero_degrade.validate().unwrap_err().contains("canary-only"));
        let zero_quarantine = with_degradation(DegradationParams {
            quarantine_threshold: 0,
            ..DegradationParams::default()
        });
        assert!(zero_quarantine.validate().is_err());
        let inverted_backoff = with_degradation(DegradationParams {
            max_backoff: VirtDuration::from_nanos(1),
            ..DegradationParams::default()
        });
        assert!(inverted_backoff.validate().unwrap_err().contains("backoff"));
        let zero_refresh = CsodConfig {
            fast_path: FastPathParams {
                decision_cache_refresh: 0,
                ..FastPathParams::default()
            },
            ..CsodConfig::default()
        };
        assert!(zero_refresh.validate().unwrap_err().contains("refresh"));
    }

    #[test]
    fn fast_path_defaults_and_uncached_mode() {
        assert_eq!(FastPathParams::default().decision_cache_refresh, 64);
        assert_eq!(FastPathParams::uncached().decision_cache_refresh, 1);
        let uncached = CsodConfig {
            fast_path: FastPathParams::uncached(),
            ..CsodConfig::default()
        };
        assert_eq!(uncached.validate(), Ok(()));
    }

    #[test]
    fn convenience_constructors() {
        assert!(!CsodConfig::without_evidence().evidence);
        assert_eq!(
            CsodConfig::with_policy(ReplacementPolicy::Naive).policy,
            ReplacementPolicy::Naive
        );
        assert_eq!(CsodConfig::with_seed(7).seed, 7);
    }

    #[test]
    fn sampling_defaults_come_from_the_shared_paper_constants() {
        let p = SamplingParams::default();
        assert_eq!(p.initial_ppm, paper::INITIAL_WATCH_PPM);
        assert_eq!(p.degrade_per_alloc_ppm, paper::DEGRADE_PER_ALLOC_PPM);
        assert_eq!(p.floor_ppm, paper::FLOOR_PPM);
        assert_eq!(p.burst_threshold, paper::BURST_ALLOC_THRESHOLD);
        assert_eq!(p.burst_window, paper::BURST_WINDOW);
        assert_eq!(p.burst_ppm, paper::BURST_THROTTLE_PPM);
        assert_eq!(p.revive_ppm, paper::REVIVE_PPM);
        assert_eq!(p.revive_period, paper::REVIVE_PERIOD);
    }

    #[test]
    fn priors_default_empty_and_census_counts() {
        use csod_ctx::FrameTable;
        let c = CsodConfig::default();
        assert!(c.priors.is_empty());
        assert_eq!(c.validate(), Ok(()));

        let frames = FrameTable::new();
        let k = |name: &str| ContextKey::new(frames.intern(name), 0x40);
        let priors = AnalysisPriors::from_classes([
            (k("a"), RiskClass::ProvenSafe),
            (k("b"), RiskClass::ProvenSafe),
            (k("c"), RiskClass::Suspicious),
            (k("d"), RiskClass::Unknown),
        ]);
        assert_eq!(priors.census(), (2, 1, 1));
        assert_eq!(priors.class_of(k("c")), Some(RiskClass::Suspicious));
        assert_eq!(priors.class_of(k("zzz")), None);
        let primed = CsodConfig::with_priors(priors);
        assert_eq!(primed.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_useless_suspicious_prior() {
        use csod_ctx::FrameTable;
        let frames = FrameTable::new();
        let k = ContextKey::new(frames.intern("a"), 0x40);
        let mut priors = AnalysisPriors::from_classes([(k, RiskClass::Suspicious)]);
        priors.suspicious_ppm = 2_000_000;
        assert!(CsodConfig::with_priors(priors.clone())
            .validate()
            .unwrap_err()
            .contains("100%"));
        priors.suspicious_ppm = paper::INITIAL_WATCH_PPM; // not a boost
        assert!(CsodConfig::with_priors(priors)
            .validate()
            .unwrap_err()
            .contains("boost"));
    }

    #[test]
    fn risk_class_display() {
        assert_eq!(RiskClass::ProvenSafe.to_string(), "proven-safe");
        assert_eq!(RiskClass::Suspicious.to_string(), "suspicious");
        assert_eq!(RiskClass::Unknown.to_string(), "unknown");
    }
}
