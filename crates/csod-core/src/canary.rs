//! The Canary Management Unit and the evidence-mode object layout
//! (paper Section IV-B, Figure 5).
//!
//! With evidence-based detection enabled, every heap object is wrapped as
//!
//! ```text
//! | RealObjectPtr | ObjectSize | CallingContextPtr | Identifier | object … | Canary |
//!   8 bytes         8            8                   8            size       8
//! ```
//!
//! The canary is one random 8-byte value per run; a mismatch at
//! deallocation (or at exit) is *evidence* that the object was
//! over-written, even though the watchpoint missed it. Without evidence
//! mode the header and canary value are omitted, but 8 boundary bytes are
//! still reserved past every object so a hardware watchpoint always has a
//! dedicated word to guard.

use crate::sampling::CtxId;
use sim_machine::{Machine, MemoryError, VirtAddr};

/// Size of the evidence-mode header (four 8-byte fields).
pub const HEADER_SIZE: u64 = 32;

/// Size of the boundary canary word.
pub const CANARY_SIZE: u64 = 8;

/// Magic value marking the header of a CSOD-managed object.
pub const OBJECT_IDENTIFIER: u64 = 0xC50D_0B1E_C0DE_CAFE;

/// Placement of one object inside its raw heap block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectLayout {
    /// Whether the evidence header is present.
    pub evidence: bool,
    /// The user-requested size.
    pub requested: u64,
}

impl ObjectLayout {
    /// Layout for a `requested`-byte object under the given mode.
    pub fn new(evidence: bool, requested: u64) -> Self {
        ObjectLayout { evidence, requested }
    }

    /// Offset of the user object from the raw allocation start.
    pub fn user_offset(&self) -> u64 {
        if self.evidence {
            HEADER_SIZE
        } else {
            0
        }
    }

    /// Offset of the canary word from the user pointer: the requested
    /// size rounded up to the 8-byte word the hardware can watch.
    pub fn canary_offset(&self) -> u64 {
        self.requested.max(1).div_ceil(CANARY_SIZE) * CANARY_SIZE
    }

    /// Total bytes to request from the underlying allocator.
    pub fn total_size(&self) -> u64 {
        self.user_offset() + self.canary_offset() + CANARY_SIZE
    }

    /// User pointer for a raw allocation at `real`.
    pub fn user_ptr(&self, real: VirtAddr) -> VirtAddr {
        real + self.user_offset()
    }

    /// Canary address for a user pointer.
    pub fn canary_addr(&self, user: VirtAddr) -> VirtAddr {
        user + self.canary_offset()
    }

    /// Raw allocation start for a user pointer.
    pub fn real_ptr(&self, user: VirtAddr) -> VirtAddr {
        user - self.user_offset()
    }
}

/// The decoded evidence header of one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjectHeader {
    /// Pointer returned by the real allocator (supports `memalign`).
    pub real_ptr: VirtAddr,
    /// The user-requested size, locating the canary.
    pub object_size: u64,
    /// The allocation calling context (stored as a dense id standing in
    /// for the paper's pointer into the context table).
    pub ctx_id: CtxId,
}

/// Canary verification result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CanaryStatus {
    /// The boundary word still holds the canary value.
    Intact,
    /// The boundary word was over-written; the found value is reported.
    Corrupted {
        /// The value found in place of the canary.
        found: u64,
    },
}

/// The Canary Management Unit: writes and verifies headers and canaries.
#[derive(Debug, Clone)]
pub struct CanaryUnit {
    canary_value: u64,
}

impl CanaryUnit {
    /// Creates a unit with the given per-run random canary value.
    pub fn new(canary_value: u64) -> Self {
        CanaryUnit { canary_value }
    }

    /// The canary value in use.
    pub fn canary_value(&self) -> u64 {
        self.canary_value
    }

    /// Writes the Figure-5 header and the canary for an object laid out
    /// by `layout` at raw address `real`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError`] if the block is not mapped (allocator
    /// invariant violation).
    pub fn imprint(
        &self,
        machine: &mut Machine,
        layout: ObjectLayout,
        real: VirtAddr,
        ctx_id: CtxId,
    ) -> Result<(), MemoryError> {
        let user = layout.user_ptr(real);
        if layout.evidence {
            // The four header words are contiguous: one write, one
            // region lookup, instead of four round trips.
            let mut header = [0u8; 32];
            header[..8].copy_from_slice(&real.as_u64().to_le_bytes());
            header[8..16].copy_from_slice(&layout.requested.to_le_bytes());
            header[16..24].copy_from_slice(&u64::from(ctx_id.as_u32()).to_le_bytes());
            header[24..32].copy_from_slice(&OBJECT_IDENTIFIER.to_le_bytes());
            machine.raw_write_bytes(real, &header)?;
            machine.raw_store_u64(layout.canary_addr(user), self.canary_value)?;
        }
        Ok(())
    }

    /// Reads back and validates the header for the object at `user`.
    ///
    /// Returns `None` when the identifier does not match — either the
    /// object is not CSOD-managed or its header was trampled.
    pub fn read_header(&self, machine: &Machine, user: VirtAddr) -> Option<ObjectHeader> {
        let base = user - HEADER_SIZE;
        let identifier = machine.raw_load_u64(base + 24).ok()?;
        if identifier != OBJECT_IDENTIFIER {
            return None;
        }
        Some(ObjectHeader {
            real_ptr: VirtAddr::new(machine.raw_load_u64(base).ok()?),
            object_size: machine.raw_load_u64(base + 8).ok()?,
            // A ctx index above u32::MAX cannot have been written by
            // us: treat it as a trampled header.
            ctx_id: CtxId::from_index(
                u32::try_from(machine.raw_load_u64(base + 16).ok()?).ok()?,
            ),
        })
    }

    /// Verifies the canary word at `canary_addr`.
    ///
    /// # Errors
    ///
    /// Propagates [`MemoryError`] if the word is not mapped.
    pub fn check(
        &self,
        machine: &Machine,
        canary_addr: VirtAddr,
    ) -> Result<CanaryStatus, MemoryError> {
        let found = machine.raw_load_u64(canary_addr)?;
        Ok(if found == self.canary_value {
            CanaryStatus::Intact
        } else {
            CanaryStatus::Corrupted { found }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Machine, VirtAddr) {
        let mut m = Machine::new();
        let base = VirtAddr::new(0x20_0000);
        m.map_region(base, 4096, "heap").unwrap();
        (m, base)
    }

    #[test]
    fn layout_without_evidence_reserves_only_the_watch_word() {
        let l = ObjectLayout::new(false, 24);
        assert_eq!(l.user_offset(), 0);
        assert_eq!(l.canary_offset(), 24);
        assert_eq!(l.total_size(), 32);
    }

    #[test]
    fn layout_with_evidence_adds_header() {
        let l = ObjectLayout::new(true, 24);
        assert_eq!(l.user_offset(), 32);
        assert_eq!(l.total_size(), 32 + 24 + 8);
        let real = VirtAddr::new(0x1000);
        let user = l.user_ptr(real);
        assert_eq!(user, real + 32);
        assert_eq!(l.real_ptr(user), real);
        assert_eq!(l.canary_addr(user), user + 24);
    }

    #[test]
    fn canary_offset_rounds_to_words() {
        assert_eq!(ObjectLayout::new(true, 1).canary_offset(), 8);
        assert_eq!(ObjectLayout::new(true, 8).canary_offset(), 8);
        assert_eq!(ObjectLayout::new(true, 9).canary_offset(), 16);
        // malloc(0) still gets a watchable boundary.
        assert_eq!(ObjectLayout::new(true, 0).canary_offset(), 8);
    }

    #[test]
    fn imprint_and_read_back() {
        let (mut m, base) = setup();
        let unit = CanaryUnit::new(0xDEAD_BEEF_F00D_CAFE);
        let layout = ObjectLayout::new(true, 40);
        unit.imprint(&mut m, layout, base, CtxId::from_index(7)).unwrap();
        let user = layout.user_ptr(base);
        let header = unit.read_header(&m, user).expect("valid header");
        assert_eq!(header.real_ptr, base);
        assert_eq!(header.object_size, 40);
        assert_eq!(header.ctx_id, CtxId::from_index(7));
        assert_eq!(
            unit.check(&m, layout.canary_addr(user)).unwrap(),
            CanaryStatus::Intact
        );
    }

    #[test]
    fn corrupted_canary_is_reported_with_found_value() {
        let (mut m, base) = setup();
        let unit = CanaryUnit::new(0x1111_2222_3333_4444);
        let layout = ObjectLayout::new(true, 16);
        unit.imprint(&mut m, layout, base, CtxId::from_index(0)).unwrap();
        let canary = layout.canary_addr(layout.user_ptr(base));
        // The program over-writes one word past its object.
        m.raw_store_u64(canary, 0x4242).unwrap();
        assert_eq!(
            unit.check(&m, canary).unwrap(),
            CanaryStatus::Corrupted { found: 0x4242 }
        );
    }

    #[test]
    fn trampled_identifier_invalidates_header() {
        let (mut m, base) = setup();
        let unit = CanaryUnit::new(1);
        let layout = ObjectLayout::new(true, 16);
        unit.imprint(&mut m, layout, base, CtxId::from_index(0)).unwrap();
        m.raw_store_u64(base + 24, 0).unwrap();
        assert!(unit.read_header(&m, layout.user_ptr(base)).is_none());
    }

    #[test]
    fn non_evidence_imprint_writes_nothing() {
        let (mut m, base) = setup();
        let unit = CanaryUnit::new(0xABCD);
        let layout = ObjectLayout::new(false, 16);
        unit.imprint(&mut m, layout, base, CtxId::from_index(0)).unwrap();
        assert_eq!(m.raw_load_u64(base).unwrap(), 0, "memory untouched");
    }
}
