//! The CSOD runtime — the "drop-in library" of paper Figure 1.
//!
//! [`Csod`] ties the units together: the Alloc/Dealloc Monitoring Unit
//! ([`Csod::malloc`] / [`Csod::free`] interposition), the Sampling
//! Management Unit, the Watchpoint Management Unit, the Signal Handling
//! Unit ([`Csod::poll`]), and — in evidence mode — the Canary and
//! Termination Handling Units ([`Csod::finish`]).

use crate::canary::{CanaryStatus, CanaryUnit, ObjectLayout, HEADER_SIZE};
use crate::config::{CsodConfig, RiskClass};
use crate::decision_cache::{DecisionCache, DecisionCacheStats};
use crate::degradation::{DegradationManager, DegradationStats, DetectionMode};
use crate::evidence::EvidenceStore;
use crate::fastmap::FastMap;
use crate::report::{DetectionMethod, OverflowReport};
use crate::sampling::{CtxId, SamplingUnit};
use crate::trap::{ReportPipeline, TrapReport};
use crate::watchpoints::{InstallOutcome, WatchCandidate, WatchpointManager};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use csod_rng::{Arc4Random, RngSlots};
use csod_trace::{
    Histogram, JsonlFileSink, MetricsRegistry, RecordSink, StderrSink, ThreadTracer,
    TraceEventKind, TraceStream, Tracer,
};
use sim_heap::{HeapError, SimHeap};
use sim_machine::{
    AccessKind, CostDomain, Machine, MemoryError, Signal, SignalInfo, SiteToken, ThreadId,
    VirtAddr, VirtInstant,
};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the CSOD allocation interposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsodError {
    /// The underlying allocator failed.
    Heap(HeapError),
    /// `free` was called on a pointer CSOD never handed out.
    UnknownPointer(VirtAddr),
    /// Simulator memory bookkeeping failed (heap invariant violation).
    Memory(MemoryError),
}

impl fmt::Display for CsodError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsodError::Heap(e) => write!(f, "allocator error: {e}"),
            CsodError::UnknownPointer(p) => write!(f, "free of unknown pointer {p}"),
            CsodError::Memory(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl std::error::Error for CsodError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CsodError::Heap(e) => Some(e),
            CsodError::Memory(e) => Some(e),
            CsodError::UnknownPointer(_) => None,
        }
    }
}

impl From<HeapError> for CsodError {
    fn from(e: HeapError) -> Self {
        CsodError::Heap(e)
    }
}

impl From<MemoryError> for CsodError {
    fn from(e: MemoryError) -> Self {
        CsodError::Memory(e)
    }
}

/// One live allocation's bookkeeping.
#[derive(Debug, Clone, Copy)]
struct AllocationRecord {
    real: VirtAddr,
    user: VirtAddr,
    requested: u64,
    canary_addr: VirtAddr,
    key: ContextKey,
    ctx_id: CtxId,
    /// Virtual time of allocation — the trap report derives the
    /// object's age from it.
    allocated_at: VirtInstant,
}

/// Aggregate counters for the evaluation tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CsodStats {
    /// Allocations intercepted.
    pub allocations: u64,
    /// Deallocations intercepted.
    pub frees: u64,
    /// Watchpoint traps delivered to the signal handler.
    pub traps: u64,
    /// Corrupted canaries found at deallocation.
    pub canary_free_hits: u64,
    /// Corrupted canaries found by the termination sweep.
    pub canary_exit_hits: u64,
    /// Watchpoint installs the backend refused.
    pub install_failures: u64,
    /// Install retries attempted after a backend failure.
    pub install_retries: u64,
    /// Transitions into canary-only detection (backend persistently
    /// unavailable).
    pub degradations: u64,
    /// Transitions back to watchpoint detection (a probe succeeded).
    pub recoveries: u64,
    /// Allocations from contexts the static pre-analysis proved safe.
    pub proven_safe_allocs: u64,
    /// Watchpoint installs spent on proven-safe contexts (the priors'
    /// savings target: this should be a small fraction of what the
    /// default schedule would spend).
    pub proven_safe_installs: u64,
    /// Watchpoint installs spent on statically suspicious contexts.
    pub suspicious_installs: u64,
    /// Availability-rule bypasses denied because the context was proven
    /// safe — watch slots the priors saved outright.
    pub prior_availability_skips: u64,
    /// Soundness counter: overflows detected in contexts the analyzer
    /// had classified proven-safe. Must stay zero; anything else is an
    /// analyzer soundness bug.
    pub proven_safe_overflows: u64,
    /// Frees that skipped the watchpoint scan and retry-cancel entirely
    /// because the watched-address filter proved the object unwatched.
    pub frees_fast_filtered: u64,
    /// Figure-4 teardowns executed through batched drains instead of
    /// synchronously on the free path.
    pub teardowns_batched: u64,
    /// Traps drained after their watchpoint was logically removed —
    /// counted here, never reported (the stale-trap rule).
    pub stale_traps_suppressed: u64,
}

/// The CSOD runtime.
///
/// # Examples
///
/// Detecting a one-word heap over-write with a watchpoint:
///
/// ```
/// use csod_core::{Csod, CsodConfig};
/// use csod_ctx::{CallingContext, ContextKey, FrameTable};
/// use sim_heap::{HeapConfig, SimHeap};
/// use sim_machine::{Machine, SiteToken, ThreadId};
/// use std::sync::Arc;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let frames = Arc::new(FrameTable::new());
/// let mut machine = Machine::new();
/// let mut heap = SimHeap::new(&mut machine, HeapConfig::default())?;
/// let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
///
/// // The workload declares its allocation site and overflow statement.
/// let alloc_ctx = CallingContext::from_locations(&frames, ["app.c:10", "main.c:3"]);
/// let key = ContextKey::new(alloc_ctx.first_level().ok_or("empty backtrace")?, 0x40);
/// let site = SiteToken(1);
/// csod.register_site(site, CallingContext::from_locations(&frames, ["memcpy.S:81", "app.c:22"]));
///
/// let p = csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &alloc_ctx)?;
/// // With all four registers free the very first object is watched.
/// machine.set_current_site(ThreadId::MAIN, site);
/// machine.app_write(ThreadId::MAIN, p + 64, 8)?; // one word past the object
/// csod.poll(&mut machine);
/// assert_eq!(csod.reports().len(), 1);
/// println!("{}", csod.reports()[0].render(&frames));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Csod {
    config: CsodConfig,
    frames: Arc<FrameTable>,
    sampling: SamplingUnit,
    watchpoints: WatchpointManager,
    degradation: DegradationManager,
    canary: CanaryUnit,
    evidence: EvidenceStore,
    /// Per-thread sampling generators, slot = dense thread id. No
    /// hashing on the draw path.
    rngs: RngSlots,
    /// Per-thread decision caches, slot = dense thread id. Memoize
    /// sampling verdicts so the shared context table is consulted only
    /// every `fast_path.decision_cache_refresh` allocations per context
    /// (or immediately after a probability-changing event).
    caches: Vec<DecisionCache>,
    /// Live objects keyed by user pointer — probed on every free.
    records: FastMap<u64, AllocationRecord>,
    /// Full calling contexts behind workload site tokens.
    sites: FastMap<u64, CallingContext>,
    reports: Vec<OverflowReport>,
    /// Dedup set: (ctx id, site token, thread, method tag).
    reported: HashSet<(u32, u64, u32, u8)>,
    stats: CsodStats,
    finished: bool,
    /// Observability: the per-thread event rings.
    tracer: Tracer,
    /// Per-thread writer handles, slot = dense thread id (the rings are
    /// strictly single-writer; the slot layout mirrors `caches`).
    thread_tracers: Vec<ThreadTracer>,
    /// Observability: the structured trap-report pipeline.
    pipeline: ReportPipeline,
    /// Last detection mode the tracer was told about, to turn the
    /// degradation ladder's state into enter/exit transition events.
    traced_mode: DetectionMode,
}

impl Csod {
    /// Creates a runtime. If [`CsodConfig::evidence_path`] is set, the
    /// evidence of previous executions is loaded so known-overflowing
    /// contexts start pinned at 100 %.
    ///
    /// # Panics
    ///
    /// Panics on configurations that cannot work at all: zero watchpoint
    /// slots, a zero probability floor, or an initial probability above
    /// 100 %. Softer inconsistencies (e.g. a reviving level below the
    /// floor) are reported by [`CsodConfig::validate`] but tolerated, so
    /// parameter sweeps can explore them.
    pub fn new(config: CsodConfig, frames: Arc<FrameTable>) -> Self {
        assert!(config.watchpoint_slots > 0, "watchpoint_slots must be at least 1");
        assert!(config.sampling.floor_ppm > 0, "probability floor must be positive");
        assert!(
            config.sampling.initial_ppm <= csod_rng::PPM_SCALE,
            "initial probability exceeds 100%"
        );
        let evidence = config
            .evidence_path
            .as_deref()
            .map(|p| EvidenceStore::load(p).unwrap_or_default())
            .unwrap_or_default();
        // Stream u64::MAX is reserved for run-level secrets (the canary
        // value); per-thread sampling streams use the thread id.
        let mut secret_rng = Arc4Random::from_seed(config.seed, u64::MAX);
        let canary = CanaryUnit::new(secret_rng.next_u64());
        let mut watchpoints = WatchpointManager::with_slots(
            config.policy,
            config.backend,
            config.watch_age_decay,
            config.watchpoint_slots,
        );
        watchpoints.configure_fast_path(
            config.fast_path.deferred_teardown,
            config.fast_path.fd_index,
        );
        let mut pipeline = ReportPipeline::new();
        if let Some(path) = config.trace.trap_report_path.as_deref() {
            pipeline.add_sink(Box::new(JsonlFileSink::new(path)));
        }
        if config.trace.trap_report_stderr {
            pipeline.add_sink(Box::new(StderrSink::new()));
        }
        Csod {
            sampling: SamplingUnit::with_priors(config.sampling, config.priors.clone()),
            watchpoints,
            degradation: DegradationManager::new(config.degradation, config.watchpoint_slots),
            canary,
            evidence,
            rngs: RngSlots::new(config.seed),
            caches: Vec::new(),
            records: FastMap::new(),
            sites: FastMap::new(),
            reports: Vec::new(),
            reported: HashSet::new(),
            stats: CsodStats::default(),
            finished: false,
            tracer: Tracer::new(config.trace.ring_capacity),
            thread_tracers: Vec::new(),
            pipeline,
            traced_mode: DetectionMode::Watchpoints,
            config,
            frames,
        }
    }

    /// Appends one event to the calling thread's trace ring. A no-op
    /// when run-time tracing is off or the `trace-off` feature compiled
    /// the tracer out.
    #[inline]
    fn trace_event(&mut self, at: VirtInstant, tid: ThreadId, kind: TraceEventKind, a: u64, b: u64) {
        if !self.config.trace.events {
            return;
        }
        let i = tid.as_u32() as usize;
        while self.thread_tracers.len() <= i {
            let next = u32::try_from(self.thread_tracers.len()).unwrap_or(u32::MAX);
            let handle = self.tracer.register(next);
            self.thread_tracers.push(handle);
        }
        self.thread_tracers[i].emit(at.as_nanos(), kind, a, b);
    }

    /// Emits a degradation transition event if the ladder's mode moved
    /// since the last check.
    fn trace_mode_transition(&mut self, at: VirtInstant, tid: ThreadId) {
        let mode = self.degradation.mode();
        if mode == self.traced_mode {
            return;
        }
        self.traced_mode = mode;
        let failures = self.degradation.stats().install_failures;
        match mode {
            DetectionMode::CanaryOnly => {
                self.trace_event(at, tid, TraceEventKind::DegradationEnter, 1, failures);
            }
            DetectionMode::Watchpoints => {
                self.trace_event(at, tid, TraceEventKind::DegradationExit, 0, 0);
            }
        }
    }

    /// The configuration in effect.
    pub fn config(&self) -> &CsodConfig {
        &self.config
    }

    /// The shared frame table.
    pub fn frames(&self) -> &Arc<FrameTable> {
        &self.frames
    }

    /// Registers the full calling context behind a workload
    /// [`SiteToken`], so traps can be resolved to the overflowing
    /// statement the way the real signal handler's `backtrace` would.
    pub fn register_site(&mut self, token: SiteToken, ctx: CallingContext) {
        self.sites.insert(token.0, ctx);
    }

    // ----- Alloc/Dealloc Monitoring Unit --------------------------------------

    /// Interposed `malloc`.
    ///
    /// `ctx` is the full allocation calling context, borrowed — it is
    /// interned (and the `backtrace` cost charged) only the first time
    /// `key` is seen; steady-state allocations never copy it.
    ///
    /// # Errors
    ///
    /// Returns [`CsodError::Heap`] when the underlying allocator fails.
    pub fn malloc(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        tid: ThreadId,
        size: u64,
        key: ContextKey,
        ctx: &CallingContext,
    ) -> Result<VirtAddr, CsodError> {
        let decision = self.intercept_allocation(machine, tid, key, ctx);

        // Lay the object out (header + canary in evidence mode, a bare
        // boundary word otherwise) and allocate.
        let layout = ObjectLayout::new(self.config.evidence, size);
        let real = heap.malloc(machine, layout.total_size())?;
        let user = layout.user_ptr(real);
        let canary_addr = layout.canary_addr(user);
        if self.config.evidence {
            machine.charge(CostDomain::Tool, machine.costs().canary_write);
            self.canary.imprint(machine, layout, real, decision.ctx_id)?;
        }

        let allocated_at = machine.now();
        self.track_new_object(
            machine,
            tid,
            &decision,
            key,
            AllocationRecord {
                real,
                user,
                requested: size,
                canary_addr,
                key,
                ctx_id: decision.ctx_id,
                allocated_at,
            },
        );
        Ok(user)
    }

    /// Interposed `memalign`: the user pointer is aligned to `align`, and
    /// the evidence header (when enabled) sits immediately before it —
    /// the header's real-object pointer is what makes this recoverable
    /// (Figure 5).
    ///
    /// # Errors
    ///
    /// Returns [`CsodError::Heap`] for allocator failures, including bad
    /// alignments.
    #[allow(clippy::too_many_arguments)] // mirrors memalign's C signature plus context
    pub fn memalign(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        tid: ThreadId,
        align: u64,
        size: u64,
        key: ContextKey,
        ctx: &CallingContext,
    ) -> Result<VirtAddr, CsodError> {
        if !align.is_power_of_two() {
            return Err(CsodError::Heap(HeapError::BadAlignment(align)));
        }
        let decision = self.intercept_allocation(machine, tid, key, ctx);

        let layout = ObjectLayout::new(self.config.evidence, size);
        // Push the user pointer to an aligned offset that still leaves
        // room for the header.
        let lead = if self.config.evidence {
            HEADER_SIZE.div_ceil(align) * align
        } else {
            0
        };
        let total = lead + layout.canary_offset() + crate::canary::CANARY_SIZE;
        let real = heap.memalign(machine, align, total)?;
        let user = real + lead;
        let canary_addr = layout.canary_addr(user);
        if self.config.evidence {
            machine.charge(CostDomain::Tool, machine.costs().canary_write);
            // The header sits in the 32 bytes before the user pointer.
            machine.raw_store_u64(user - 32, real.as_u64())?;
            machine.raw_store_u64(user - 24, size)?;
            machine.raw_store_u64(user - 16, u64::from(decision.ctx_id.as_u32()))?;
            machine.raw_store_u64(user - 8, crate::canary::OBJECT_IDENTIFIER)?;
            machine.raw_store_u64(canary_addr, self.canary.canary_value())?;
        }

        let allocated_at = machine.now();
        self.track_new_object(
            machine,
            tid,
            &decision,
            key,
            AllocationRecord {
                real,
                user,
                requested: size,
                canary_addr,
                key,
                ctx_id: decision.ctx_id,
                allocated_at,
            },
        );
        Ok(user)
    }

    /// Interposed `calloc(1, size)`: a managed allocation with the user
    /// bytes zeroed.
    ///
    /// # Errors
    ///
    /// Returns [`CsodError::Heap`] when the underlying allocator fails.
    pub fn calloc(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        tid: ThreadId,
        size: u64,
        key: ContextKey,
        ctx: &CallingContext,
    ) -> Result<VirtAddr, CsodError> {
        let user = self.malloc(machine, heap, tid, size, key, ctx)?;
        machine.raw_fill(user, size.max(1), 0)?;
        Ok(user)
    }

    /// Interposed `realloc`: allocates a new managed object (with its own
    /// sampling decision, header and canary), copies the common prefix,
    /// and frees the old object — running its canary check like any free.
    ///
    /// # Errors
    ///
    /// Returns [`CsodError::UnknownPointer`] if `user` was not allocated
    /// through CSOD, or [`CsodError::Heap`] when the allocator fails.
    #[allow(clippy::too_many_arguments)] // mirrors realloc's C signature plus context
    pub fn realloc(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        tid: ThreadId,
        user: VirtAddr,
        new_size: u64,
        key: ContextKey,
        ctx: &CallingContext,
    ) -> Result<VirtAddr, CsodError> {
        let old = *self
            .records
            .get(user.as_u64())
            .ok_or(CsodError::UnknownPointer(user))?;
        let new_user = self.malloc(machine, heap, tid, new_size, key, ctx)?;
        // Object sizes fit the host address space; a saturated copy
        // would fail at the allocation below long before wrapping.
        let copy = usize::try_from(old.requested.min(new_size)).unwrap_or(usize::MAX);
        if copy > 0 {
            let mut buf = vec![0u8; copy];
            machine.raw_read_bytes(user, &mut buf)?;
            machine.raw_write_bytes(new_user, &buf)?;
        }
        self.free(machine, heap, tid, user)?;
        Ok(new_user)
    }

    /// Shared allocation prologue: fast-path costs (return-address
    /// fetch, hash lookup, one random draw — Section V-B) and the
    /// sampling decision — served from the calling thread's decision
    /// cache when the memoized verdict is still valid, from the shared
    /// sampling unit otherwise. The full-backtrace cost is charged
    /// exactly when the context is first seen.
    fn intercept_allocation(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        key: ContextKey,
        ctx: &CallingContext,
    ) -> crate::sampling::AllocDecision {
        let costs = machine.costs();
        let fast_path = costs.return_address + costs.ctx_lookup + costs.rng_draw;
        machine.charge(CostDomain::Tool, fast_path);

        let rng = self.rngs.get(tid.as_u32());
        let cache = Self::cache_for(
            &mut self.caches,
            self.config.fast_path.decision_cache_refresh,
            tid,
        );
        let evidence = &self.evidence;
        let frames = &self.frames;
        let decision = cache.on_allocation(&self.sampling, key, machine.now(), rng, ctx, |full| {
            evidence.contains(full, frames)
        });
        if decision.first_seen {
            machine.charge(CostDomain::Tool, machine.costs().full_backtrace);
        }
        self.stats.allocations += 1;
        if decision.prior == Some(RiskClass::ProvenSafe) {
            self.stats.proven_safe_allocs += 1;
        }
        let now = machine.now();
        let ctx = u64::from(decision.ctx_id.as_u32());
        let ppm = u64::from(decision.probability_ppm);
        if decision.entered_burst {
            self.trace_event(now, tid, TraceEventKind::BurstEnter, ctx, ppm);
        }
        if decision.revived {
            self.trace_event(now, tid, TraceEventKind::Revive, ctx, ppm);
        }
        decision
    }

    /// The decision cache of thread `tid`, created on first use.
    fn cache_for(caches: &mut Vec<DecisionCache>, refresh: u32, tid: ThreadId) -> &mut DecisionCache {
        let i = tid.as_u32() as usize;
        while caches.len() <= i {
            caches.push(DecisionCache::new(refresh));
        }
        &mut caches[i]
    }

    /// Shared allocation epilogue: the watch attempt — the sampler's
    /// verdict, plus the availability rule ("we never waste precious
    /// hardware watchpoints") for contexts never watched before — and
    /// the live-object record.
    fn track_new_object(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        decision: &crate::sampling::AllocDecision,
        key: ContextKey,
        record: AllocationRecord,
    ) {
        // The availability rule never spends a free register on a
        // context the static analysis proved safe: its floor probability
        // already encodes "almost certainly clean", and the canary plus
        // the probability floor remain as the soundness net.
        let proven_safe = decision.prior == Some(RiskClass::ProvenSafe);
        let bypass_eligible = self.watchpoints.has_free_slot() && decision.prior_watches == 0;
        let availability = bypass_eligible && !proven_safe;
        if proven_safe && bypass_eligible && !decision.wants_watch {
            self.stats.prior_availability_skips += 1;
        }
        // Sampled means "selected for a watch attempt" — by the
        // sampler's draw or by the availability rule — not merely that
        // the draw succeeded.
        let selected = decision.wants_watch || availability;
        let kind = if selected {
            TraceEventKind::AllocSampled
        } else {
            TraceEventKind::AllocSkipped
        };
        self.trace_event(
            machine.now(),
            tid,
            kind,
            u64::from(decision.ctx_id.as_u32()),
            u64::from(decision.probability_ppm),
        );
        if selected {
            let outcome = self.try_install(
                machine,
                tid,
                WatchCandidate {
                    object_start: record.user,
                    canary_addr: record.canary_addr,
                    key,
                    ctx_id: decision.ctx_id,
                    probability_ppm: decision.probability_ppm,
                },
                0,
            );
            if matches!(outcome, InstallOutcome::InstalledFree | InstallOutcome::Replaced) {
                match decision.prior {
                    Some(RiskClass::ProvenSafe) => self.stats.proven_safe_installs += 1,
                    Some(RiskClass::Suspicious) => self.stats.suspicious_installs += 1,
                    Some(RiskClass::Unknown) | None => {}
                }
            }
        }
        self.records.insert(record.user.as_u64(), record);
    }

    /// One gated install attempt, reporting the outcome back to the
    /// degradation manager. `prior_attempts` is 0 for a first try and the
    /// retry count when re-attempting a previously failed candidate.
    fn try_install(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
        candidate: WatchCandidate,
        prior_attempts: u32,
    ) -> InstallOutcome {
        let now = machine.now();
        if !self.degradation.allows_install(now, candidate.key) {
            // Gated by quarantine, backoff, or canary-only mode — not a
            // policy decision, so no stats.rejected bump.
            return InstallOutcome::Rejected;
        }
        let sampling = &self.sampling;
        let rng = self.rngs.get(tid.as_u32());
        let outcome = self
            .watchpoints
            .consider(machine, candidate, rng, |k| sampling.probability_ppm(k));
        match outcome {
            InstallOutcome::Failed => {
                let verdict = self
                    .degradation
                    .on_install_failure(now, candidate, prior_attempts);
                if verdict.quarantined {
                    self.sampling.quarantine(candidate.key);
                }
                self.trace_event(
                    now,
                    tid,
                    TraceEventKind::InstallFailed,
                    candidate.object_start.as_u64(),
                    u64::from(prior_attempts),
                );
            }
            InstallOutcome::Rejected => {}
            InstallOutcome::InstalledFree | InstallOutcome::Replaced => {
                self.degradation.on_install_success(candidate.key);
                if prior_attempts > 0 {
                    self.degradation.on_retry_success();
                }
                self.sampling.on_watched(candidate.key);
                let kind = if outcome == InstallOutcome::InstalledFree {
                    TraceEventKind::WatchInstalled
                } else {
                    TraceEventKind::WatchPreempted
                };
                self.trace_event(
                    now,
                    tid,
                    kind,
                    candidate.object_start.as_u64(),
                    u64::from(candidate.ctx_id.as_u32()),
                );
            }
        }
        self.trace_mode_transition(now, tid);
        outcome
    }

    /// Re-attempts installs whose retry backoff has elapsed. Candidates
    /// whose object was freed in the meantime (or got watched through
    /// another allocation) are silently dropped.
    fn retry_installs(&mut self, machine: &mut Machine) {
        let due = self.degradation.due_retries(machine.now());
        for (candidate, attempts) in due {
            if !self.records.contains(candidate.object_start.as_u64())
                || self.watchpoints.is_watched(candidate.object_start)
            {
                continue;
            }
            self.stats.install_retries += 1;
            self.try_install(machine, ThreadId::MAIN, candidate, attempts);
        }
    }

    /// Interposed `free`.
    ///
    /// Removes the object's watchpoint if present and — in evidence
    /// mode — verifies the canary, turning a corruption into a
    /// [`DetectionMethod::CanaryOnFree`] report and pinning the context
    /// at 100 % "such that all following overflows sharing the same
    /// allocation calling context can be detected from then on".
    ///
    /// # Errors
    ///
    /// Returns [`CsodError::UnknownPointer`] for pointers CSOD never
    /// allocated.
    pub fn free(
        &mut self,
        machine: &mut Machine,
        heap: &mut SimHeap,
        tid: ThreadId,
        user: VirtAddr,
    ) -> Result<(), CsodError> {
        let record = self
            .records
            .remove(user.as_u64())
            .ok_or(CsodError::UnknownPointer(user))?;
        self.stats.frees += 1;

        // "Upon every deallocation, CSOD checks whether the current
        // object is being watched. If yes, the corresponding watchpoint
        // will be removed." A pending install retry for the object is
        // cancelled with it — the address may be recycled. The check
        // itself is the watched-address filter (≤ slot-count addresses)
        // plus the pending-retry count: a miss on both proves there is
        // nothing to remove or cancel, so the common unwatched free
        // touches neither the WMU nor the retry queue.
        if self.watchpoints.filter().contains(user) || self.degradation.pending_retries() > 0 {
            let removed = self.watchpoints.remove_by_object(machine, user);
            self.degradation.cancel_retry(user);
            if removed {
                let now = machine.now();
                self.trace_event(now, tid, TraceEventKind::WatchRemoved, user.as_u64(), 0);
            }
        } else {
            self.stats.frees_fast_filtered += 1;
            let now = machine.now();
            self.trace_event(now, tid, TraceEventKind::FreeFiltered, user.as_u64(), 0);
        }

        if self.config.evidence {
            machine.charge(CostDomain::Tool, machine.costs().canary_check);
            if let CanaryStatus::Corrupted { .. } = self.canary.check(machine, record.canary_addr)? {
                self.stats.canary_free_hits += 1;
                self.on_evidence(machine, tid, &record, DetectionMethod::CanaryOnFree);
            }
        }
        heap.free(machine, record.real)?;
        Ok(())
    }

    // ----- thread interception --------------------------------------------------

    /// `pthread_create` interception: spawns a machine thread and
    /// extends every installed watchpoint onto it.
    pub fn spawn_thread(&mut self, machine: &mut Machine) -> ThreadId {
        let tid = machine.spawn_thread();
        self.watchpoints.install_on_thread(machine, tid);
        tid
    }

    /// Thread-exit interception: flushes the thread's decision cache
    /// into the sampler and drops per-thread state; the kernel closes
    /// the thread's perf events.
    ///
    /// # Errors
    ///
    /// Propagates [`sim_machine::ThreadError`] for unknown threads.
    pub fn exit_thread(
        &mut self,
        machine: &mut Machine,
        tid: ThreadId,
    ) -> Result<(), sim_machine::ThreadError> {
        // Drain queued teardowns while their descriptors are still open:
        // the machine auto-closes the dead thread's fds, and batching
        // them out first keeps the syscall accounting honest.
        self.watchpoints.drain_teardowns(machine);
        self.watchpoints.forget_thread(tid);
        if let Some(cache) = self.caches.get_mut(tid.as_u32() as usize) {
            cache.flush(&self.sampling);
            // Reset the slot so a thread id ever reused by the registry
            // would start with a fresh cache, not the dead thread's
            // memoized verdicts.
            *cache = DecisionCache::new(self.config.fast_path.decision_cache_refresh);
        }
        self.rngs.release(tid.as_u32());
        machine.exit_thread(tid)
    }

    // ----- Signal Handling Unit ---------------------------------------------------

    /// Drains pending machine signals and handles them: watchpoint traps
    /// become [`OverflowReport`]s; SIGSEGV/SIGABRT trigger the erroneous-
    /// exit canary sweep the Termination Handling Unit registers.
    ///
    /// Install retries whose backoff elapsed are re-attempted first, so a
    /// transiently failing backend self-heals on the polling cadence.
    pub fn poll(&mut self, machine: &mut Machine) {
        self.retry_installs(machine);
        for sig in machine.take_signals() {
            match sig.signal {
                Signal::Trap => self.on_trap(machine, sig),
                Signal::Segv | Signal::Abort => {
                    // Erroneous exit: salvage whatever canary evidence
                    // exists before the process dies.
                    self.sweep_canaries(machine);
                }
            }
        }
        // Quiesce point: pay for any teardowns deferred off the free
        // path, in one batched kernel entry.
        let before = self.watchpoints.stats().teardowns_batched;
        self.watchpoints.drain_teardowns(machine);
        let drained = self.watchpoints.stats().teardowns_batched - before;
        if drained > 0 {
            let now = machine.now();
            self.trace_event(now, ThreadId::MAIN, TraceEventKind::TeardownBatch, drained, 0);
        }
        self.trace_mode_transition(machine.now(), ThreadId::MAIN);
    }

    fn on_trap(&mut self, machine: &Machine, sig: SignalInfo) {
        let Some(fd) = sig.fd else { return };
        // Resolve the firing watchpoint — through the fd index, or the
        // one-by-one descriptor comparison of Section III-D1 when the
        // paper-faithful mode is configured.
        let Some(watched) = self.watchpoints.find_by_fd(fd) else {
            // A stale trap: its watchpoint was replaced or logically
            // removed after the access. Counted, never reported — the
            // address may already belong to a different object.
            self.stats.stale_traps_suppressed += 1;
            self.trace_event(
                machine.now(),
                sig.thread,
                TraceEventKind::TrapSuppressed,
                fd.as_raw(),
                0,
            );
            return;
        };
        self.stats.traps += 1;
        let ctx_id = watched.ctx_id;
        let key = watched.key;
        let object_start = watched.object_start;
        let boundary = watched.canary_addr;
        self.trace_event(
            machine.now(),
            sig.thread,
            TraceEventKind::TrapFired,
            sig.fault_addr.as_u64(),
            u64::from(ctx_id.as_u32()),
        );
        if !self
            .reported
            .insert((ctx_id.as_u32(), sig.site.0, sig.thread.as_u32(), 0))
        {
            return; // already reported this (context, site, thread) triple
        }
        if self.config.priors.class_of(key) == Some(RiskClass::ProvenSafe) {
            // A trap from a context the analyzer proved safe is an
            // analyzer soundness bug — count it loudly.
            self.stats.proven_safe_overflows += 1;
        }
        let alloc_context = self
            .sampling
            .full_context(key)
            .unwrap_or_default();
        let overflow_site = self.sites.get(sig.site.0).cloned();
        // The paper's report (Section III-D2), structured: the full
        // allocation calling context plus the access coordinates the
        // Figure-6 text cannot carry.
        let now = machine.now();
        let record = self.records.get(object_start.as_u64()).copied();
        let requested = record.map_or(0, |r| r.requested);
        self.pipeline.emit(TrapReport {
            method: DetectionMethod::Watchpoint,
            kind: sig.access,
            thread: sig.thread,
            ctx_id,
            object_start,
            access_addr: sig.fault_addr,
            requested_size: requested,
            offset_past_end: sig
                .fault_addr
                .as_u64()
                .saturating_sub(object_start.as_u64() + requested),
            object_age_ns: record.map_or(0, |r| {
                now.saturating_duration_since(r.allocated_at).as_nanos()
            }),
            at_ns: now.as_nanos(),
            alloc_context: TrapReport::resolve_context(&alloc_context, &self.frames),
            overflow_site: overflow_site
                .as_ref()
                .map(|c| TrapReport::resolve_context(c, &self.frames))
                .unwrap_or_default(),
        });
        self.reports.push(OverflowReport {
            kind: sig.access,
            method: DetectionMethod::Watchpoint,
            thread: sig.thread,
            object_start,
            boundary_addr: boundary,
            overflow_site,
            alloc_context,
            ctx_id,
            at: now,
        });
    }

    fn on_evidence(
        &mut self,
        machine: &Machine,
        tid: ThreadId,
        record: &AllocationRecord,
        method: DetectionMethod,
    ) {
        // Boost the context to 100% and persist it for future runs.
        self.sampling.pin_certain(record.key);
        if let Some(full) = self.sampling.full_context(record.key) {
            self.evidence.record(&full, &self.frames);
        }
        let method_tag = match method {
            DetectionMethod::Watchpoint => 0,
            DetectionMethod::CanaryOnFree => 1,
            DetectionMethod::CanaryAtExit => 2,
        };
        if !self
            .reported
            .insert((record.ctx_id.as_u32(), u64::MAX, tid.as_u32(), method_tag))
        {
            return;
        }
        if self.config.priors.class_of(record.key) == Some(RiskClass::ProvenSafe) {
            self.stats.proven_safe_overflows += 1;
        }
        let alloc_context = self.sampling.full_context(record.key).unwrap_or_default();
        let now = machine.now();
        // Canary evidence yields the same structured record, minus the
        // overflow site (which only a trap can know); the corrupted
        // canary word is the best available access address.
        self.pipeline.emit(TrapReport {
            method,
            kind: AccessKind::Write,
            thread: tid,
            ctx_id: record.ctx_id,
            object_start: record.user,
            access_addr: record.canary_addr,
            requested_size: record.requested,
            offset_past_end: record
                .canary_addr
                .as_u64()
                .saturating_sub(record.user.as_u64() + record.requested),
            object_age_ns: now.saturating_duration_since(record.allocated_at).as_nanos(),
            at_ns: now.as_nanos(),
            alloc_context: TrapReport::resolve_context(&alloc_context, &self.frames),
            overflow_site: Vec::new(),
        });
        self.reports.push(OverflowReport {
            kind: AccessKind::Write,
            method,
            thread: tid,
            object_start: record.user,
            boundary_addr: record.canary_addr,
            overflow_site: None,
            alloc_context,
            ctx_id: record.ctx_id,
            at: now,
        });
    }

    fn sweep_canaries(&mut self, machine: &mut Machine) {
        if !self.config.evidence {
            return;
        }
        let mut records: Vec<AllocationRecord> = Vec::with_capacity(self.records.len());
        self.records.for_each(|_, r| records.push(*r));
        for record in records {
            machine.charge(CostDomain::Tool, machine.costs().canary_check);
            if let Ok(CanaryStatus::Corrupted { .. }) = self.canary.check(machine, record.canary_addr)
            {
                self.stats.canary_exit_hits += 1;
                self.on_evidence(machine, ThreadId::MAIN, &record, DetectionMethod::CanaryAtExit);
            }
        }
    }

    // ----- Termination Handling Unit --------------------------------------------------

    /// End of execution: flushes every thread's decision cache into the
    /// sampler, drains signals, sweeps all live canaries, removes every
    /// watchpoint, and persists the evidence store. Idempotent.
    pub fn finish(&mut self, machine: &mut Machine) {
        if self.finished {
            return;
        }
        self.finished = true;
        for cache in &mut self.caches {
            cache.flush(&self.sampling);
        }
        self.poll(machine);
        self.sweep_canaries(machine);
        self.watchpoints.remove_all(machine);
        if let Some(path) = self.config.evidence_path.as_deref() {
            // Persisting evidence must never crash the host program.
            let _ = self.evidence.save(path);
        }
        if let Some(path) = self.config.report_path.as_deref() {
            let mut text = String::new();
            for report in &self.reports {
                text.push_str(&report.render(&self.frames));
                text.push('\n');
            }
            // Like evidence, report logging is best-effort.
            let _ = std::fs::write(path, text);
        }
        self.pipeline.finish_stream();
    }

    // ----- introspection ---------------------------------------------------------------

    /// All overflow reports so far.
    pub fn reports(&self) -> &[OverflowReport] {
        &self.reports
    }

    /// Whether any overflow was detected.
    pub fn detected(&self) -> bool {
        !self.reports.is_empty()
    }

    /// Whether a watchpoint trap (precise detection) occurred.
    pub fn detected_by_watchpoint(&self) -> bool {
        self.reports
            .iter()
            .any(|r| r.method == DetectionMethod::Watchpoint)
    }

    /// Aggregate counters. The degradation-health fields are folded in
    /// from the [`DegradationManager`] at read time, so there is a single
    /// source of truth for them.
    pub fn stats(&self) -> CsodStats {
        let d = self.degradation.stats();
        CsodStats {
            install_failures: d.install_failures,
            degradations: d.degradations,
            recoveries: d.recoveries,
            teardowns_batched: self.watchpoints.stats().teardowns_batched,
            ..self.stats
        }
    }

    /// The detection tier currently in effect (watchpoints, or canary-
    /// only while the backend is considered down).
    pub fn detection_mode(&self) -> DetectionMode {
        self.degradation.mode()
    }

    /// Degradation-ladder counters (retries, quarantines, probes, mode
    /// transitions).
    pub fn degradation_stats(&self) -> DegradationStats {
        self.degradation.stats()
    }

    /// Number of contexts currently quarantined by the degradation
    /// manager.
    pub fn quarantined_contexts(&self, machine: &Machine) -> usize {
        self.degradation.quarantined_contexts(machine.now())
    }

    /// Watchpoint-manager counters (Table IV's "WT" is
    /// [`crate::WatchpointStats::installs`]).
    pub fn watchpoint_stats(&self) -> crate::WatchpointStats {
        self.watchpoints.stats()
    }

    /// Number of distinct allocation contexts observed.
    pub fn distinct_contexts(&self) -> usize {
        self.sampling.distinct_contexts()
    }

    /// The sampling unit (read access for experiments).
    pub fn sampling(&self) -> &SamplingUnit {
        &self.sampling
    }

    /// The evidence store accumulated in this run.
    pub fn evidence(&self) -> &EvidenceStore {
        &self.evidence
    }

    /// Whether the object at `user` is currently watched.
    pub fn is_watched(&self, user: VirtAddr) -> bool {
        self.watchpoints.is_watched(user)
    }

    /// The requested size of the live CSOD-managed object at `user`.
    pub fn object_size(&self, user: VirtAddr) -> Option<u64> {
        self.records.get(user.as_u64()).map(|r| r.requested)
    }

    /// Aggregate decision-cache counters across all threads.
    pub fn decision_cache_stats(&self) -> DecisionCacheStats {
        let mut total = DecisionCacheStats::default();
        for cache in &self.caches {
            let s = cache.stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
        }
        total
    }

    /// The per-object memory overhead in bytes for an object of
    /// `requested` bytes under the current configuration (Table V):
    /// 32-byte header + 8-byte canary in evidence mode, 8 boundary bytes
    /// otherwise.
    pub fn per_object_overhead(&self, requested: u64) -> u64 {
        ObjectLayout::new(self.config.evidence, requested).total_size() - requested
    }

    // ----- observability ---------------------------------------------------------------

    /// Every structured trap report emitted so far (paper Section
    /// III-D2 as machine-readable records).
    pub fn trap_reports(&self) -> &[TrapReport] {
        self.pipeline.reports()
    }

    /// Registers an additional sink for structured trap reports; the
    /// config-driven JSONL and stderr sinks are installed by
    /// [`Csod::new`].
    pub fn add_trap_sink(&mut self, sink: Box<dyn RecordSink>) {
        self.pipeline.add_sink(sink);
    }

    /// Drains the per-thread event rings into one time-ordered stream.
    /// Consuming: events are returned once. Empty when tracing is off
    /// (run-time or compile-time).
    pub fn drain_trace(&self) -> TraceStream {
        self.tracer.drain()
    }

    /// A point-in-time metrics snapshot: every runtime counter
    /// (`CsodStats`, `WatchpointStats`, the degradation ladder, the
    /// decision caches) as Prometheus-style counters and gauges, plus
    /// the watch-lifetime, slot-occupancy and per-context sample-rate
    /// histograms.
    pub fn metrics_registry(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        let s = self.stats();
        reg.set_counter("csod_allocations_total", s.allocations);
        reg.set_counter("csod_frees_total", s.frees);
        reg.set_counter("csod_frees_fast_filtered_total", s.frees_fast_filtered);
        reg.set_counter("csod_traps_total", s.traps);
        reg.set_counter("csod_stale_traps_suppressed_total", s.stale_traps_suppressed);
        reg.set_counter("csod_canary_free_hits_total", s.canary_free_hits);
        reg.set_counter("csod_canary_exit_hits_total", s.canary_exit_hits);
        reg.set_counter("csod_install_failures_total", s.install_failures);
        reg.set_counter("csod_install_retries_total", s.install_retries);
        reg.set_counter("csod_degradations_total", s.degradations);
        reg.set_counter("csod_recoveries_total", s.recoveries);
        reg.set_counter("csod_teardowns_batched_total", s.teardowns_batched);
        let w = self.watchpoints.stats();
        reg.set_counter("csod_watch_installs_total", w.installs);
        reg.set_counter("csod_watch_replacements_total", w.replacements);
        reg.set_counter("csod_watch_removals_on_free_total", w.removals_on_free);
        reg.set_counter("csod_watch_rejected_total", w.rejected);
        reg.set_counter("csod_teardown_batches_total", w.teardown_batches);
        let d = self.degradation.stats();
        reg.set_counter("csod_quarantines_total", d.quarantines);
        reg.set_counter("csod_degradation_probes_total", d.probes);
        let c = self.decision_cache_stats();
        reg.set_counter("csod_decision_cache_hits_total", c.hits);
        reg.set_counter("csod_decision_cache_misses_total", c.misses);
        reg.set_counter("csod_decision_cache_invalidations_total", c.invalidations);
        reg.set_counter("csod_reports_total", self.reports.len() as u64);
        reg.set_counter("csod_trap_reports_total", self.pipeline.len() as u64);
        reg.set_gauge("csod_watched_objects", self.watchpoints.watched_count() as f64);
        reg.set_gauge(
            "csod_distinct_contexts",
            self.sampling.distinct_contexts() as f64,
        );
        reg.set_gauge(
            "csod_canary_only_mode",
            f64::from(u8::from(self.degradation.mode() == DetectionMode::CanaryOnly)),
        );
        reg.set_gauge(
            "csod_pending_teardowns",
            self.watchpoints.pending_teardowns() as f64,
        );
        reg.set_histogram(
            "csod_watch_lifetime_ns",
            self.watchpoints.watch_lifetime_histogram(),
        );
        reg.set_histogram(
            "csod_slot_occupancy",
            self.watchpoints.slot_occupancy_histogram(),
        );
        // Per-context sample-rate distribution, built from the sampling
        // table at snapshot time (ppm values, so one bucket ≈ one 2×
        // band of watch probability).
        let mut rates = Histogram::new();
        for (_key, state) in self.sampling.snapshot() {
            rates.record(u64::from(state.probability_ppm()));
        }
        reg.set_histogram("csod_ctx_probability_ppm", rates.snapshot());
        reg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::ReplacementPolicy;
    use sim_heap::HeapConfig;

    struct Fixture {
        machine: Machine,
        heap: SimHeap,
        csod: Csod,
        frames: Arc<FrameTable>,
    }

    fn fixture(config: CsodConfig) -> Fixture {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let csod = Csod::new(config, Arc::clone(&frames));
        Fixture {
            machine,
            heap,
            csod,
            frames,
        }
    }

    fn ctx(frames: &FrameTable, site: &str) -> CallingContext {
        CallingContext::from_locations(frames, [site, "main.c:1"])
    }

    fn key(frames: &FrameTable, site: &str) -> ContextKey {
        ContextKey::new(frames.intern(site), 0x40)
    }

    fn malloc(f: &mut Fixture, site: &str, size: u64) -> VirtAddr {
        let k = key(&f.frames, site);
        let c = ctx(&f.frames, site);
        f.csod
            .malloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, size, k, &c)
            .unwrap()
    }

    #[test]
    fn first_object_is_watched_due_to_availability() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "a.c:1", 64);
        assert!(f.csod.is_watched(p));
        assert_eq!(f.csod.watchpoint_stats().installs, 1);
    }

    #[test]
    fn overflow_write_fires_watchpoint_and_reports_both_contexts() {
        let mut f = fixture(CsodConfig::default());
        let site = SiteToken(9);
        f.csod
            .register_site(site, ctx(&f.frames, "memcpy.S:81"));
        let p = malloc(&mut f, "alloc.c:10", 64);
        f.machine.set_current_site(ThreadId::MAIN, site);
        f.machine.app_write(ThreadId::MAIN, p + 64, 8).unwrap();
        f.csod.poll(&mut f.machine);
        assert!(f.csod.detected_by_watchpoint());
        let r = &f.csod.reports()[0];
        assert_eq!(r.kind, AccessKind::Write);
        assert_eq!(r.method, DetectionMethod::Watchpoint);
        let text = r.render(&f.frames);
        assert!(text.contains("memcpy.S:81"));
        assert!(text.contains("alloc.c:10"));
        assert_eq!(f.csod.stats().traps, 1);
    }

    #[test]
    fn over_read_is_detected_too() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "ssl.c:2588", 33);
        // Canary word starts at the 40-byte boundary (33 rounded up).
        f.machine.app_read(ThreadId::MAIN, p + 40, 4).unwrap();
        f.csod.poll(&mut f.machine);
        assert!(f.csod.detected());
        assert_eq!(f.csod.reports()[0].kind, AccessKind::Read);
    }

    #[test]
    fn in_bounds_accesses_never_report() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "a.c:1", 64);
        for off in (0..64).step_by(8) {
            f.machine.app_write(ThreadId::MAIN, p + off, 8).unwrap();
            f.machine.app_read(ThreadId::MAIN, p + off, 8).unwrap();
        }
        f.csod.poll(&mut f.machine);
        assert!(!f.csod.detected(), "no false positives");
    }

    #[test]
    fn duplicate_traps_report_once() {
        let mut f = fixture(CsodConfig::default());
        let site = SiteToken(3);
        f.csod.register_site(site, ctx(&f.frames, "loop.c:5"));
        let p = malloc(&mut f, "a.c:1", 16);
        f.machine.set_current_site(ThreadId::MAIN, site);
        for _ in 0..5 {
            f.machine.app_write(ThreadId::MAIN, p + 16, 8).unwrap();
        }
        f.csod.poll(&mut f.machine);
        assert_eq!(f.csod.reports().len(), 1);
        assert_eq!(f.csod.stats().traps, 5);
    }

    #[test]
    fn canary_detects_missed_overwrite_on_free() {
        let mut f = fixture(CsodConfig::default());
        // Saturate the four watchpoints with objects from other contexts.
        for i in 0..4 {
            let _ = malloc(&mut f, &format!("filler.c:{i}"), 16);
        }
        let p = malloc(&mut f, "victim.c:1", 16);
        // With the naive default? (near-FIFO) the object may or may not
        // be watched; force the unwatched case by removing if present.
        if f.csod.is_watched(p) {
            // Overflow silently via the raw backdoor: corrupt the canary
            // without touching the watchpoint logic.
        }
        f.machine.raw_store_u64(p + 16, 0x4242).unwrap();
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        assert!(f.csod.detected());
        let r = f.csod.reports().last().unwrap();
        assert_eq!(r.method, DetectionMethod::CanaryOnFree);
        assert_eq!(f.csod.stats().canary_free_hits, 1);
        // The context is now pinned: the next allocation is watched.
        let p2 = malloc(&mut f, "victim.c:1", 16);
        let state = f.csod.sampling().state(key(&f.frames, "victim.c:1")).unwrap();
        assert!(state.pinned_certain);
        let _ = p2;
    }

    #[test]
    fn canary_sweep_at_exit_detects_leaked_overflow() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "leak.c:1", 24);
        f.machine.raw_store_u64(p + 24, 0x1337).unwrap();
        f.csod.finish(&mut f.machine);
        assert_eq!(f.csod.stats().canary_exit_hits, 1);
        assert_eq!(
            f.csod.reports().last().unwrap().method,
            DetectionMethod::CanaryAtExit
        );
        // finish() is idempotent.
        f.csod.finish(&mut f.machine);
        assert_eq!(f.csod.reports().len(), 1);
    }

    #[test]
    fn segv_triggers_emergency_sweep() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "crash.c:1", 16);
        f.machine.raw_store_u64(p + 16, 0xBAD).unwrap();
        // A wild access far outside the heap raises SIGSEGV.
        let _ = f
            .machine
            .app_write(ThreadId::MAIN, VirtAddr::new(0x10), 8);
        f.csod.poll(&mut f.machine);
        assert_eq!(f.csod.stats().canary_exit_hits, 1);
    }

    #[test]
    fn without_evidence_canaries_are_disabled() {
        let mut f = fixture(CsodConfig::without_evidence());
        let p = malloc(&mut f, "a.c:1", 16);
        f.machine.raw_store_u64(p + 16, 0x4242).unwrap();
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        f.csod.finish(&mut f.machine);
        assert!(!f.csod.detected());
        // Overhead is just the boundary word.
        assert_eq!(f.csod.per_object_overhead(16), 8);
        assert_eq!(fixture(CsodConfig::default()).csod.per_object_overhead(16), 40);
    }

    #[test]
    fn evidence_pins_context_across_executions() {
        let dir = std::env::temp_dir().join("csod-runtime-evidence");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("evidence-{}.txt", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let config = CsodConfig {
            evidence_path: Some(path.clone()),
            ..CsodConfig::default()
        };

        // Execution 1: the overflow is missed by watchpoints (object not
        // watched) but caught by the canary at free.
        let mut f1 = fixture(config.clone());
        for i in 0..4 {
            let _ = malloc(&mut f1, &format!("filler.c:{i}"), 16);
        }
        let p = malloc(&mut f1, "bug.c:7", 16);
        f1.machine.raw_store_u64(p + 16, 7).unwrap();
        f1.csod
            .free(&mut f1.machine, &mut f1.heap, ThreadId::MAIN, p)
            .unwrap();
        f1.csod.finish(&mut f1.machine);
        assert!(path.exists());

        // Execution 2: the very first allocation from bug.c:7 starts at
        // 100% and is watched immediately.
        let mut f2 = fixture(config);
        for i in 0..4 {
            let _ = malloc(&mut f2, &format!("filler.c:{i}"), 16);
        }
        let p2 = malloc(&mut f2, "bug.c:7", 16);
        let state = f2.csod.sampling().state(key(&f2.frames, "bug.c:7")).unwrap();
        assert!(state.pinned_certain, "evidence pre-pinned the context");
        let _ = p2;
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn free_removes_watchpoint_and_recycles_registers() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "a.c:1", 64);
        assert!(f.csod.is_watched(p));
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        // The removal is logical immediately; the register comes back at
        // the next drain point (here: poll).
        assert!(!f.csod.is_watched(p));
        f.csod.poll(&mut f.machine);
        assert_eq!(f.machine.free_registers(ThreadId::MAIN), 4);
        assert_eq!(f.csod.stats().teardowns_batched, 1);
    }

    #[test]
    fn unwatched_frees_take_the_filtered_fast_path() {
        // Fill all four slots so later contexts go unwatched (naive
        // policy never preempts).
        let mut f = fixture(CsodConfig::with_policy(ReplacementPolicy::Naive));
        for i in 0..4 {
            let _ = malloc(&mut f, &format!("pin{i}.c:1"), 16);
        }
        let p = malloc(&mut f, "cold.c:1", 16);
        assert!(!f.csod.is_watched(p));
        let before = f.machine.counter().syscalls();
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        // No teardown syscalls, and the filter skip is counted.
        assert_eq!(f.machine.counter().syscalls(), before);
        assert_eq!(f.csod.stats().frees_fast_filtered, 1);
    }

    #[test]
    fn stale_trap_after_free_is_counted_never_reported() {
        let mut f = fixture(CsodConfig::default());
        let site = SiteToken(7);
        f.csod.register_site(site, ctx(&f.frames, "late.c:1"));
        let p = malloc(&mut f, "a.c:1", 64);
        assert!(f.csod.is_watched(p));
        // The overflow happens while watched, but the object is freed
        // (logically unlinking the watchpoint) before the signal is
        // drained: the trap is stale and must not produce a report — the
        // address may already belong to a new object.
        f.machine.set_current_site(ThreadId::MAIN, site);
        f.machine.app_write(ThreadId::MAIN, p + 64, 8).unwrap();
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        // Recycle the address for an unrelated object before polling.
        let q = malloc(&mut f, "fresh.c:1", 64);
        f.csod.poll(&mut f.machine);
        assert_eq!(f.csod.stats().stale_traps_suppressed, 1);
        // The overflow is still caught — by the free-time canary check on
        // the old object — but never through the stale trap: no
        // watchpoint report, so nothing can be attributed to the new
        // object now living at the recycled address.
        assert!(
            !f.csod.detected_by_watchpoint(),
            "a recycled address must not inherit the old object's trap"
        );
        assert_eq!(f.csod.stats().canary_free_hits, 1);
        let _ = q;
    }

    #[test]
    fn respawned_thread_gets_fresh_cache_and_rng_slot() {
        let mut f = fixture(CsodConfig::default());
        let worker = f.csod.spawn_thread(&mut f.machine);
        let k = key(&f.frames, "w.c:1");
        let c = ctx(&f.frames, "w.c:1");
        let p = f
            .csod
            .malloc(&mut f.machine, &mut f.heap, worker, 16, k, &c)
            .unwrap();
        f.csod.free(&mut f.machine, &mut f.heap, worker, p).unwrap();
        let slot = worker.as_u32() as usize;
        assert!(f.csod.caches[slot].stats().misses > 0);
        f.csod.exit_thread(&mut f.machine, worker).unwrap();
        // The dead thread's slot was reset, not left with stale state.
        let s = f.csod.caches[slot].stats();
        assert_eq!((s.hits, s.misses, s.invalidations), (0, 0, 0));
        // A respawned worker starts from a fresh cache and RNG slot even
        // if the registry ever handed the same dense index back.
        let worker2 = f.csod.spawn_thread(&mut f.machine);
        let p2 = f
            .csod
            .malloc(&mut f.machine, &mut f.heap, worker2, 16, k, &c)
            .unwrap();
        let slot2 = worker2.as_u32() as usize;
        assert!(f.csod.caches[slot2].stats().misses > 0);
        f.csod.free(&mut f.machine, &mut f.heap, worker2, p2).unwrap();
        f.csod.exit_thread(&mut f.machine, worker2).unwrap();
    }

    #[test]
    fn deferred_and_synchronous_teardown_report_identically() {
        use crate::config::FastPathParams;
        let run = |fast_path: FastPathParams| {
            let mut f = fixture(CsodConfig {
                fast_path,
                ..CsodConfig::default()
            });
            let site = SiteToken(11);
            f.csod.register_site(site, ctx(&f.frames, "smash.c:2"));
            let mut live = Vec::new();
            for i in 0..32 {
                let p = malloc(&mut f, &format!("s{}.c:1", i % 6), 48);
                live.push(p);
                if i % 3 == 2 {
                    let victim = live.remove(0);
                    f.csod
                        .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, victim)
                        .unwrap();
                }
                if i == 10 {
                    // One real overflow mid-run on a live object.
                    f.machine.set_current_site(ThreadId::MAIN, site);
                    let target = *live.last().unwrap();
                    let size = f.csod.object_size(target).unwrap();
                    f.machine.app_write(ThreadId::MAIN, target + size, 8).unwrap();
                }
                if i % 5 == 4 {
                    f.csod.poll(&mut f.machine);
                }
            }
            f.csod.finish(&mut f.machine);
            let reports: Vec<_> = f
                .csod
                .reports()
                .iter()
                .map(|r| (r.method, r.ctx_id.as_u32(), r.thread.as_u32()))
                .collect();
            (reports, f.machine.open_events())
        };
        let (sync_reports, sync_open) = run(FastPathParams::synchronous_teardown());
        let (fast_reports, fast_open) = run(FastPathParams::default());
        assert_eq!(sync_reports, fast_reports, "detection parity");
        assert_eq!(sync_open, 0);
        assert_eq!(fast_open, 0, "deferred teardown must not leak events");
    }

    #[test]
    fn unknown_free_is_an_error() {
        let mut f = fixture(CsodConfig::default());
        let bogus = VirtAddr::new(0x9999);
        assert_eq!(
            f.csod.free(&mut f.machine, &mut f.heap, ThreadId::MAIN, bogus),
            Err(CsodError::UnknownPointer(bogus))
        );
    }

    #[test]
    fn memalign_aligns_and_is_watchable() {
        let mut f = fixture(CsodConfig::default());
        let k = key(&f.frames, "aligned.c:1");
        let c = ctx(&f.frames, "aligned.c:1");
        let p = f
            .csod
            .memalign(&mut f.machine, &mut f.heap, ThreadId::MAIN, 4096, 100, k, &c)
            .unwrap();
        assert!(p.is_aligned(4096));
        // Header readable via the canary unit (RealObjectPtr supports it).
        let header = CanaryUnit::new(0).read_header(&f.machine, p);
        assert!(header.is_some());
        assert_eq!(header.unwrap().object_size, 100);
        // Overflow past the aligned object is detected.
        f.machine.app_write(ThreadId::MAIN, p + 104, 8).unwrap();
        f.csod.poll(&mut f.machine);
        assert!(f.csod.detected());
        // And free works through the header.
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
    }

    #[test]
    fn new_threads_inherit_watchpoints() {
        let mut f = fixture(CsodConfig::default());
        let p = malloc(&mut f, "a.c:1", 32);
        let worker = f.csod.spawn_thread(&mut f.machine);
        f.machine.app_write(worker, p + 32, 8).unwrap();
        f.csod.poll(&mut f.machine);
        assert!(f.csod.detected());
        assert_eq!(f.csod.reports()[0].thread, worker);
        f.csod.exit_thread(&mut f.machine, worker).unwrap();
    }

    #[test]
    fn naive_policy_never_watches_fifth_context() {
        let mut f = fixture(CsodConfig::with_policy(ReplacementPolicy::Naive));
        for i in 0..4 {
            let _ = malloc(&mut f, &format!("ctx{i}.c:1"), 16);
        }
        let p = malloc(&mut f, "fifth.c:1", 16);
        assert!(!f.csod.is_watched(p));
        assert_eq!(f.csod.watchpoint_stats().rejected, 1);
    }

    #[test]
    fn stats_and_counters_accumulate() {
        let mut f = fixture(CsodConfig::default());
        let a = malloc(&mut f, "a.c:1", 16);
        let _b = malloc(&mut f, "b.c:2", 16);
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, a)
            .unwrap();
        let s = f.csod.stats();
        assert_eq!(s.allocations, 2);
        assert_eq!(s.frees, 1);
        assert_eq!(f.csod.distinct_contexts(), 2);
    }

    #[test]
    fn calloc_zeroes_and_is_managed() {
        let mut f = fixture(CsodConfig::default());
        let k = key(&f.frames, "z.c:1");
        let c = ctx(&f.frames, "z.c:1");
        let p = f
            .csod
            .calloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, 64, k, &c)
            .unwrap();
        assert_eq!(f.machine.raw_load_u64(p).unwrap(), 0);
        assert_eq!(f.machine.raw_load_u64(p + 56).unwrap(), 0);
        assert!(f.csod.is_watched(p));
        // The canary after the zeroed object is intact.
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        assert!(!f.csod.detected());
    }

    #[test]
    fn realloc_copies_and_keeps_detection_working() {
        let mut f = fixture(CsodConfig::default());
        let k = key(&f.frames, "r.c:1");
        let c = ctx(&f.frames, "r.c:1");
        let p = f
            .csod
            .malloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, 16, k, &c)
            .unwrap();
        f.machine.raw_store_u64(p, 0xFEED).unwrap();
        let q = f
            .csod
            .realloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, p, 256, k, &c)
            .unwrap();
        assert_eq!(f.machine.raw_load_u64(q).unwrap(), 0xFEED);
        assert_ne!(p, q);
        assert_eq!(f.csod.object_size(q), Some(256));
        assert_eq!(f.csod.object_size(p), None, "old object gone");
        // The grown object's boundary is still guarded: either its
        // watchpoint fires (if the 25%-probability roll watched it) or
        // the canary evidence catches the over-write at exit.
        f.machine.app_write(ThreadId::MAIN, q + 256, 8).unwrap();
        f.csod.poll(&mut f.machine);
        f.csod.finish(&mut f.machine);
        assert!(f.csod.detected());
    }

    #[test]
    fn realloc_detects_prior_overflow_through_old_canary() {
        let mut f = fixture(CsodConfig::default());
        let k = key(&f.frames, "r2.c:1");
        let c = ctx(&f.frames, "r2.c:1");
        let p = f
            .csod
            .malloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, 24, k, &c)
            .unwrap();
        // Corrupt the canary silently, then realloc: the embedded free
        // must catch the evidence.
        f.machine.raw_store_u64(p + 24, 0xBAD).unwrap();
        let _q = f
            .csod
            .realloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, p, 64, k, &c)
            .unwrap();
        assert_eq!(f.csod.stats().canary_free_hits, 1);
    }

    #[test]
    fn realloc_of_unknown_pointer_fails() {
        let mut f = fixture(CsodConfig::default());
        let k = key(&f.frames, "r3.c:1");
        let c = ctx(&f.frames, "r3.c:1");
        let bogus = VirtAddr::new(0x42);
        assert_eq!(
            f.csod
                .realloc(&mut f.machine, &mut f.heap, ThreadId::MAIN, bogus, 10, k, &c)
                .unwrap_err(),
            CsodError::UnknownPointer(bogus)
        );
    }

    #[test]
    fn reports_are_written_to_the_report_path() {
        let dir = std::env::temp_dir().join("csod-report-path");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("reports-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut f = fixture(CsodConfig {
            report_path: Some(path.clone()),
            ..CsodConfig::default()
        });
        let site = SiteToken(4);
        f.csod.register_site(site, ctx(&f.frames, "smash.c:9"));
        let p = malloc(&mut f, "buf.c:3", 32);
        f.machine.set_current_site(ThreadId::MAIN, site);
        f.machine.app_write(ThreadId::MAIN, p + 32, 8).unwrap();
        f.csod.poll(&mut f.machine);
        f.csod.finish(&mut f.machine);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("smash.c:9"));
        assert!(text.contains("buf.c:3"));
        std::fs::remove_file(&path).unwrap();
    }

    /// A fixture whose config carries a static verdict for `site`,
    /// interned in the same frame table the workload uses.
    fn priored_fixture(site: &str, class: RiskClass) -> Fixture {
        use crate::config::AnalysisPriors;
        let frames = Arc::new(FrameTable::new());
        let k = key(&frames, site);
        let config = CsodConfig::with_priors(AnalysisPriors::from_classes([(k, class)]));
        let mut machine = Machine::new();
        let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let csod = Csod::new(config, Arc::clone(&frames));
        Fixture {
            machine,
            heap,
            csod,
            frames,
        }
    }

    #[test]
    fn proven_safe_prior_denies_the_availability_bypass() {
        let mut f = priored_fixture("safe.c:1", RiskClass::ProvenSafe);
        // Without the prior the first object of a fresh context is always
        // watched ("installation due to availability"); with it, the
        // context starts at the 0.001% floor and the bypass is denied.
        let p = malloc(&mut f, "safe.c:1", 64);
        assert!(!f.csod.is_watched(p), "proven-safe object must not burn a register");
        let s = f.csod.stats();
        assert_eq!(s.proven_safe_allocs, 1);
        assert_eq!(s.proven_safe_installs, 0);
        assert_eq!(s.prior_availability_skips, 1);
        assert_eq!(s.proven_safe_overflows, 0);
    }

    #[test]
    fn suspicious_prior_objects_are_watched_and_counted() {
        let mut f = priored_fixture("risky.c:1", RiskClass::Suspicious);
        // At the 90% boost nearly every object is watched; the first one
        // is guaranteed through availability regardless of the roll.
        let p = malloc(&mut f, "risky.c:1", 64);
        assert!(f.csod.is_watched(p));
        assert!(f.csod.stats().suspicious_installs >= 1);
        // An actual overflow from the suspicious context is caught and
        // does not touch the proven-safe soundness counter.
        f.machine.app_write(ThreadId::MAIN, p + 64, 8).unwrap();
        f.csod.poll(&mut f.machine);
        assert!(f.csod.detected_by_watchpoint());
        assert_eq!(f.csod.stats().proven_safe_overflows, 0);
    }

    #[test]
    fn misclassified_overflow_trips_the_soundness_counter() {
        let mut f = priored_fixture("wrong.c:1", RiskClass::ProvenSafe);
        let p = malloc(&mut f, "wrong.c:1", 16);
        assert!(!f.csod.is_watched(p));
        // The canary still catches the overflow the watchpoints skipped —
        // and books it against the analyzer.
        f.machine.raw_store_u64(p + 16, 0xBAD).unwrap();
        f.csod
            .free(&mut f.machine, &mut f.heap, ThreadId::MAIN, p)
            .unwrap();
        assert!(f.csod.detected());
        assert_eq!(f.csod.stats().proven_safe_overflows, 1);
    }

    #[test]
    fn tool_costs_are_charged_to_tool_bucket() {
        let mut f = fixture(CsodConfig::default());
        let _ = malloc(&mut f, "a.c:1", 16);
        let c = f.machine.counter();
        assert!(c.tool_ns() > 0, "interposition must cost tool time");
        assert!(c.app_ns() > 0, "the allocator itself is app time");
        // Installing on one thread = 6 syscalls (open + 4 fcntl + ioctl).
        assert_eq!(c.syscalls(), 6);
    }
}
