//! Graceful degradation of the watchpoint path.
//!
//! A production always-on detector must never take the process down when
//! its watchpoint backend misbehaves — `perf_event_open` returning
//! `EBUSY`/`ENOSPC`, debug registers stolen by a co-resident debugger,
//! interrupted syscalls. The [`DegradationManager`] implements the
//! resilience ladder:
//!
//! 1. **Retry with bounded backoff** — a failed install is retried on
//!    virtual time, with the backoff doubling per consecutive failure up
//!    to a cap, and at most [`DegradationParams::max_retries`] attempts
//!    per candidate.
//! 2. **Context quarantine** — a context whose installs keep failing is
//!    benched for [`DegradationParams::quarantine_period`] so the tool
//!    stops burning syscalls on it.
//! 3. **Canary-only mode** — after
//!    [`DegradationParams::degrade_threshold`] consecutive backend
//!    failures the manager stops requesting watchpoints entirely;
//!    detection continues through canary evidence (the paper's
//!    Section IV-B fallback), which needs no kernel support.
//! 4. **Self-healing** — while degraded, one install per
//!    [`DegradationParams::probe_interval`] is let through as a probe;
//!    the first success re-arms the watchpoint path.

use crate::watchpoints::WatchCandidate;
use csod_ctx::ContextKey;
use sim_machine::{VirtDuration, VirtInstant};
use std::collections::HashMap;
use std::fmt;

/// Tuning knobs of the degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationParams {
    /// Backoff after the first failed install; doubles per consecutive
    /// failure.
    pub retry_backoff: VirtDuration,
    /// Upper bound on the doubled backoff.
    pub max_backoff: VirtDuration,
    /// Install attempts per candidate before it is abandoned.
    pub max_retries: u32,
    /// Consecutive per-context failures before the context is benched.
    pub quarantine_threshold: u32,
    /// How long a benched context stays out of the watch path.
    pub quarantine_period: VirtDuration,
    /// Consecutive backend failures before falling back to canary-only
    /// detection.
    pub degrade_threshold: u32,
    /// While degraded, how often one install is let through as a probe.
    pub probe_interval: VirtDuration,
}

impl Default for DegradationParams {
    fn default() -> Self {
        DegradationParams {
            retry_backoff: VirtDuration::from_millis(10),
            max_backoff: VirtDuration::from_secs(1),
            max_retries: 4,
            quarantine_threshold: 3,
            quarantine_period: VirtDuration::from_secs(60),
            degrade_threshold: 8,
            probe_interval: VirtDuration::from_secs(1),
        }
    }
}

/// Which detection tier the runtime currently operates in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectionMode {
    /// Watchpoints armed normally (canaries still active in evidence
    /// mode).
    #[default]
    Watchpoints,
    /// The watchpoint backend is considered down; only canary evidence
    /// detects overflows until a probe succeeds.
    CanaryOnly,
}

impl fmt::Display for DetectionMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DetectionMode::Watchpoints => f.write_str("watchpoints"),
            DetectionMode::CanaryOnly => f.write_str("canary-only"),
        }
    }
}

/// Health and transition counters of the degradation ladder.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DegradationStats {
    /// Install attempts that failed at the backend.
    pub install_failures: u64,
    /// Retry attempts performed.
    pub retries: u64,
    /// Retries that ended in a successful install.
    pub retry_successes: u64,
    /// Contexts benched for repeated failures.
    pub quarantines: u64,
    /// Transitions into canary-only mode.
    pub degradations: u64,
    /// Transitions back to watchpoints (a probe succeeded).
    pub recoveries: u64,
    /// Probe installs attempted while degraded.
    pub probes: u64,
}

/// What [`DegradationManager::on_install_failure`] decided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureVerdict {
    /// The context crossed the quarantine threshold on this failure.
    pub quarantined: bool,
    /// The backend crossed the degrade threshold on this failure.
    pub degraded: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct CtxHealth {
    consecutive_failures: u32,
    quarantined_until: Option<VirtInstant>,
}

#[derive(Debug, Clone, Copy)]
struct PendingRetry {
    candidate: WatchCandidate,
    attempts: u32,
    due: VirtInstant,
}

/// The degradation state machine. One per [`crate::Csod`] runtime.
#[derive(Debug)]
pub struct DegradationManager {
    params: DegradationParams,
    mode: DetectionMode,
    /// Consecutive backend failures (any context); reset on success.
    consecutive_failures: u32,
    /// No install attempts before this instant (bounded backoff).
    backoff_until: Option<VirtInstant>,
    /// While degraded: the next time a probe install is allowed.
    next_probe: VirtInstant,
    ctx_health: HashMap<ContextKey, CtxHealth>,
    /// Candidates waiting for their retry slot. Bounded: one per
    /// watchpoint slot is plenty — anything more is churn.
    retry_queue: Vec<PendingRetry>,
    retry_capacity: usize,
    stats: DegradationStats,
}

impl DegradationManager {
    /// Creates a manager; `retry_capacity` bounds the retry queue (the
    /// runtime passes its watchpoint slot count).
    pub fn new(params: DegradationParams, retry_capacity: usize) -> Self {
        DegradationManager {
            params,
            mode: DetectionMode::Watchpoints,
            consecutive_failures: 0,
            backoff_until: None,
            next_probe: VirtInstant::BOOT,
            ctx_health: HashMap::new(),
            retry_queue: Vec::new(),
            retry_capacity: retry_capacity.max(1),
            stats: DegradationStats::default(),
        }
    }

    /// The parameters in effect.
    pub fn params(&self) -> &DegradationParams {
        &self.params
    }

    /// The current detection tier.
    pub fn mode(&self) -> DetectionMode {
        self.mode
    }

    /// Health counters.
    pub fn stats(&self) -> DegradationStats {
        self.stats
    }

    /// Whether `key` is currently benched.
    pub fn is_quarantined(&self, key: ContextKey, now: VirtInstant) -> bool {
        self.ctx_health
            .get(&key)
            .and_then(|h| h.quarantined_until)
            .is_some_and(|until| now < until)
    }

    /// Gate in front of every install attempt. Returns `false` while the
    /// context is benched, while backoff is pending, or — in canary-only
    /// mode — between probes. A `true` in canary-only mode *is* the
    /// probe: the caller must report the outcome back.
    pub fn allows_install(&mut self, now: VirtInstant, key: ContextKey) -> bool {
        if let Some(h) = self.ctx_health.get_mut(&key) {
            match h.quarantined_until {
                Some(until) if now < until => return false,
                Some(_) => {
                    // Quarantine served; start fresh.
                    h.quarantined_until = None;
                    h.consecutive_failures = 0;
                }
                None => {}
            }
        }
        match self.mode {
            DetectionMode::Watchpoints => {
                !matches!(self.backoff_until, Some(until) if now < until)
            }
            DetectionMode::CanaryOnly => {
                if now >= self.next_probe {
                    self.stats.probes += 1;
                    self.next_probe = now + self.params.probe_interval;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful install. Clears backoff and the context's
    /// failure streak; in canary-only mode this is the probe success
    /// that re-arms the watchpoint path. Returns `true` when the call
    /// caused a recovery transition.
    pub fn on_install_success(&mut self, key: ContextKey) -> bool {
        self.consecutive_failures = 0;
        self.backoff_until = None;
        if let Some(h) = self.ctx_health.get_mut(&key) {
            h.consecutive_failures = 0;
        }
        if self.mode == DetectionMode::CanaryOnly {
            self.mode = DetectionMode::Watchpoints;
            self.stats.recoveries += 1;
            return true;
        }
        false
    }

    /// Reports a failed install of `candidate`. Applies backoff,
    /// schedules a bounded retry, and advances the ladder (quarantine /
    /// canary-only) when thresholds are crossed.
    ///
    /// `prior_attempts` is 0 for a first-time install and the retry
    /// count when the failure came from a retry.
    pub fn on_install_failure(
        &mut self,
        now: VirtInstant,
        candidate: WatchCandidate,
        prior_attempts: u32,
    ) -> FailureVerdict {
        self.stats.install_failures += 1;
        let mut verdict = FailureVerdict::default();

        // Per-context streak -> quarantine.
        let health = self.ctx_health.entry(candidate.key).or_default();
        health.consecutive_failures += 1;
        if health.consecutive_failures >= self.params.quarantine_threshold
            && health.quarantined_until.is_none()
        {
            health.quarantined_until = Some(now + self.params.quarantine_period);
            health.consecutive_failures = 0;
            self.stats.quarantines += 1;
            verdict.quarantined = true;
        }

        // Backend streak -> backoff, then canary-only.
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        let exp = self.consecutive_failures.saturating_sub(1).min(20);
        let backoff_ns = self
            .params
            .retry_backoff
            .as_nanos()
            .saturating_mul(1u64 << exp)
            .min(self.params.max_backoff.as_nanos());
        self.backoff_until = Some(now + VirtDuration::from_nanos(backoff_ns));
        if self.mode == DetectionMode::Watchpoints
            && self.consecutive_failures >= self.params.degrade_threshold
        {
            self.mode = DetectionMode::CanaryOnly;
            self.next_probe = now + self.params.probe_interval;
            self.stats.degradations += 1;
            verdict.degraded = true;
        }

        // Bounded retry of this candidate (not in quarantine, attempts
        // left, queue not full).
        let attempts = prior_attempts + 1;
        if !verdict.quarantined
            && attempts < self.params.max_retries
            && self.retry_queue.len() < self.retry_capacity
        {
            self.retry_queue.push(PendingRetry {
                candidate,
                attempts,
                due: now + VirtDuration::from_nanos(backoff_ns),
            });
        }
        verdict
    }

    /// Drains the retry candidates whose backoff has elapsed. The caller
    /// re-attempts each and reports the outcome through
    /// [`DegradationManager::on_install_success`] /
    /// [`DegradationManager::on_install_failure`] (passing the returned
    /// attempt count).
    pub fn due_retries(&mut self, now: VirtInstant) -> Vec<(WatchCandidate, u32)> {
        let mut due = Vec::new();
        self.retry_queue.retain(|r| {
            if r.due <= now {
                due.push((r.candidate, r.attempts));
                false
            } else {
                true
            }
        });
        self.stats.retries += due.len() as u64;
        due
    }

    /// Records that a drained retry succeeded (separate from
    /// [`DegradationManager::on_install_success`] bookkeeping so the
    /// retry-success counter stays meaningful).
    pub fn on_retry_success(&mut self) {
        self.stats.retry_successes += 1;
    }

    /// Forgets a freed object's pending retry, if any.
    pub fn cancel_retry(&mut self, object_start: sim_machine::VirtAddr) {
        self.retry_queue.retain(|r| r.candidate.object_start != object_start);
    }

    /// Number of install retries currently waiting out their backoff.
    /// The free fast path reads this (a plain `Vec::len`) to decide
    /// whether the retry-cancel scan can be skipped entirely.
    pub fn pending_retries(&self) -> usize {
        self.retry_queue.len()
    }

    /// Number of contexts currently benched.
    pub fn quarantined_contexts(&self, now: VirtInstant) -> usize {
        self.ctx_health
            .values()
            .filter(|h| h.quarantined_until.is_some_and(|until| now < until))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling::CtxId;
    use csod_ctx::FrameTable;
    use sim_machine::VirtAddr;

    fn candidate(frames: &FrameTable, name: &str) -> WatchCandidate {
        WatchCandidate {
            object_start: VirtAddr::new(0x10_0000),
            canary_addr: VirtAddr::new(0x10_0040),
            key: ContextKey::new(frames.intern(name), 0),
            ctx_id: CtxId::from_index(0),
            probability_ppm: 1000,
        }
    }

    fn manager() -> DegradationManager {
        DegradationManager::new(DegradationParams::default(), 4)
    }

    #[test]
    fn healthy_manager_allows_everything() {
        let frames = FrameTable::new();
        let c = candidate(&frames, "a");
        let mut m = manager();
        assert_eq!(m.mode(), DetectionMode::Watchpoints);
        assert!(m.allows_install(VirtInstant::BOOT, c.key));
        assert!(!m.on_install_success(c.key));
        assert_eq!(m.stats(), DegradationStats::default());
    }

    #[test]
    fn failure_applies_backoff_then_retries() {
        let frames = FrameTable::new();
        let c = candidate(&frames, "a");
        let mut m = manager();
        let t0 = VirtInstant::BOOT;
        let v = m.on_install_failure(t0, c, 0);
        assert!(!v.quarantined && !v.degraded);
        // Inside the 10ms backoff: installs gated, retry not yet due.
        let t1 = t0 + VirtDuration::from_millis(5);
        assert!(!m.allows_install(t1, c.key));
        assert!(m.due_retries(t1).is_empty());
        // After the backoff both open up.
        let t2 = t0 + VirtDuration::from_millis(11);
        assert!(m.allows_install(t2, c.key));
        let due = m.due_retries(t2);
        assert_eq!(due.len(), 1);
        assert_eq!(due[0].1, 1, "first retry");
        assert_eq!(m.stats().retries, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let frames = FrameTable::new();
        let c = candidate(&frames, "a");
        let p = DegradationParams::default();
        let mut m = manager();
        let mut now = VirtInstant::BOOT;
        for i in 0..20u32 {
            m.on_install_failure(now, c, u32::MAX - 1); // no retry queueing
            let expected = p
                .retry_backoff
                .as_nanos()
                .saturating_mul(1 << i.min(20))
                .min(p.max_backoff.as_nanos());
            assert!(!m.allows_install(now + VirtDuration::from_nanos(expected - 1), c.key));
            now = now + VirtDuration::from_secs(100); // outlive any quarantine
            // Quarantine interferes with this test's purpose; clear it.
            m.ctx_health.clear();
            m.mode = DetectionMode::Watchpoints;
        }
    }

    #[test]
    fn repeated_context_failures_quarantine() {
        let frames = FrameTable::new();
        let c = candidate(&frames, "a");
        let mut m = manager();
        let now = VirtInstant::BOOT;
        let mut quarantined = false;
        for _ in 0..DegradationParams::default().quarantine_threshold {
            quarantined = m.on_install_failure(now, c, u32::MAX - 1).quarantined;
        }
        assert!(quarantined);
        assert!(m.is_quarantined(c.key, now));
        assert!(!m.allows_install(now, c.key));
        assert_eq!(m.quarantined_contexts(now), 1);
        // Another context is unaffected (modulo global backoff).
        let other = candidate(&frames, "b");
        assert!(!m.is_quarantined(other.key, now));
        // After the period the context is paroled.
        let later = now + DegradationParams::default().quarantine_period;
        assert!(!m.is_quarantined(c.key, later));
        assert!(m.allows_install(later, c.key));
    }

    #[test]
    fn persistent_failures_degrade_then_probe_then_recover() {
        let frames = FrameTable::new();
        let p = DegradationParams::default();
        let mut m = manager();
        let mut now = VirtInstant::BOOT;
        let mut degraded = false;
        for i in 0..p.degrade_threshold {
            // Distinct contexts so quarantine does not kick in first.
            let c = candidate(&frames, &format!("ctx{i}"));
            degraded = m.on_install_failure(now, c, u32::MAX - 1).degraded;
            if !degraded {
                now = now + VirtDuration::from_secs(2);
            }
        }
        assert!(degraded);
        assert_eq!(m.mode(), DetectionMode::CanaryOnly);
        assert_eq!(m.stats().degradations, 1);
        // Between probes nothing is allowed...
        let c = candidate(&frames, "probe");
        now = now + VirtDuration::from_millis(1);
        assert!(!m.allows_install(now, c.key));
        // ...at the probe point exactly one attempt goes through.
        now = now + p.probe_interval;
        assert!(m.allows_install(now, c.key));
        assert!(!m.allows_install(now, c.key), "one probe per interval");
        assert_eq!(m.stats().probes, 1);
        // The probe succeeding re-arms the watchpoint path.
        assert!(m.on_install_success(c.key));
        assert_eq!(m.mode(), DetectionMode::Watchpoints);
        assert_eq!(m.stats().recoveries, 1);
        assert!(m.allows_install(now, c.key));
    }

    #[test]
    fn retry_queue_is_bounded_and_cancellable() {
        let frames = FrameTable::new();
        let mut m = DegradationManager::new(DegradationParams::default(), 2);
        let now = VirtInstant::BOOT;
        for i in 0..5 {
            let mut c = candidate(&frames, &format!("c{i}"));
            c.object_start = VirtAddr::new(0x2000 + i * 0x100);
            m.on_install_failure(now, c, 0);
        }
        let far = now + VirtDuration::from_secs(10);
        // Only 2 queued despite 5 failures; cancel removes by object.
        m.cancel_retry(VirtAddr::new(0x2000));
        let due = m.due_retries(far);
        assert_eq!(due.len(), 1);
        // Exhausted candidates (attempts >= max_retries) never queue.
        let c = candidate(&frames, "spent");
        m.on_install_failure(far, c, DegradationParams::default().max_retries);
        assert!(m.due_retries(far + VirtDuration::from_secs(10)).is_empty());
    }
}
