//! A workload built around *shared allocation helpers* — the shape that
//! separates a per-site (per-function) analysis from a context-sensitive
//! one.
//!
//! Real applications funnel most allocations through a handful of
//! wrappers (`xmalloc`, arena constructors, slab refills); the calling
//! context, not the wrapper, decides the object's fate. This model
//! realizes that: `helpers` allocation functions, each invoked from
//! `contexts_per_helper` distinct caller chains, with exactly one
//! calling context (through one helper) planted to overflow. An
//! analysis that keys verdicts by allocation function must condemn
//! every context through the buggy helper; one that keys by calling
//! context condemns just the planted one and proves its siblings safe —
//! that delta is the whole point of the context-sensitive pass.

use crate::sites::SiteRegistry;
use crate::trace::Event;
use csod_ctx::FrameTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_machine::AccessKind;
use std::sync::Arc;

/// A shared-allocation-helper application model.
#[derive(Debug, Clone)]
pub struct SharedHelperApp {
    /// Application/module name.
    pub name: &'static str,
    /// Number of shared allocation helper functions.
    pub helpers: usize,
    /// Distinct calling contexts funneled through each helper.
    pub contexts_per_helper: usize,
    /// Allocations each context performs (into its own slot, reused).
    pub allocs_per_context: u32,
    /// In-bounds accesses per allocation.
    pub accesses_per_alloc: u32,
    /// Spawn a reader thread that touches every slot, making slots
    /// escape — this forces the analyzer through its summarized
    /// (interval-join) path instead of the cheap definite one.
    pub cross_thread_readers: bool,
    /// The helper whose planted context overflows.
    pub bug_helper: usize,
    /// Which of that helper's contexts overflows.
    pub bug_context: usize,
}

impl SharedHelperApp {
    /// The corpus-sized instance the golden census and self-tests use:
    /// 4 helpers × 6 contexts, cross-thread traffic on.
    pub fn standard() -> SharedHelperApp {
        SharedHelperApp {
            name: "sharedlib",
            helpers: 4,
            contexts_per_helper: 6,
            allocs_per_context: 4,
            accesses_per_alloc: 3,
            cross_thread_readers: true,
            bug_helper: 1,
            bug_context: 2,
        }
    }

    /// A bench-sized instance: enough helpers and traffic that the
    /// classification stage dominates and incrementality pays.
    pub fn bench(helpers: usize, contexts_per_helper: usize) -> SharedHelperApp {
        SharedHelperApp {
            name: "sharedbench",
            helpers: helpers.max(1),
            contexts_per_helper: contexts_per_helper.max(1),
            allocs_per_context: 8,
            accesses_per_alloc: 12,
            cross_thread_readers: true,
            bug_helper: 0,
            bug_context: 0,
        }
    }

    /// Total allocation calling contexts (= allocation sites).
    pub fn contexts(&self) -> usize {
        self.helpers * self.contexts_per_helper
    }

    /// Registry index of the planted bug's calling context.
    ///
    /// # Panics
    ///
    /// Panics if `bug_helper`/`bug_context` lie outside the model.
    pub fn bug_site(&self) -> usize {
        assert!(self.bug_helper < self.helpers && self.bug_context < self.contexts_per_helper);
        self.bug_helper * self.contexts_per_helper + self.bug_context
    }

    /// The shared helper function label of `site` (what a per-function
    /// analysis keys on).
    pub fn helper_of(&self, site: usize) -> String {
        format!("helper_{}.c:100", site / self.contexts_per_helper)
    }

    /// Builds the registry: `contexts()` allocation sites grouped
    /// `contexts_per_helper` at a time behind shared helper frames,
    /// plus an ordinary access site (token 0) and the overflowing
    /// statement (token 1).
    pub fn registry(&self) -> SiteRegistry {
        let mut reg = SiteRegistry::new(self.name, Arc::new(FrameTable::new()));
        for helper in 0..self.helpers {
            for _ in 0..self.contexts_per_helper {
                reg.add_alloc_site_via(&format!("helper_{helper}.c:100"));
            }
        }
        reg.add_access_site(self.name, "logic/use.c:210");
        reg.add_access_site(self.name, "overflow/copy.c:81");
        reg
    }

    /// Generates the trace, deterministic per `seed`. `dirty_helper`
    /// models a localized code change: that helper's contexts allocate
    /// with perturbed sizes (and access ranges to match), leaving every
    /// other helper's statement stream byte-identical — the shape an
    /// incremental re-analysis must exploit.
    pub fn trace(&self, seed: u64, dirty_helper: Option<usize>) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5AA3ED);
        let mut events = Vec::new();
        if self.cross_thread_readers {
            events.push(Event::SpawnThread);
        }
        let use_site = sim_machine::SiteToken(0);
        let bug_site = sim_machine::SiteToken(1);
        let bug = self.bug_site();
        for helper in 0..self.helpers {
            let size_bump = if dirty_helper == Some(helper) { 8 } else { 0 };
            for c in 0..self.contexts_per_helper {
                let site = helper * self.contexts_per_helper + c;
                let slot = site;
                let base_size = 16 + ((site as u64 * 7) % 16) * 8 + size_bump;
                for round in 0..self.allocs_per_context {
                    let size = base_size + u64::from(round % 2) * 8;
                    events.push(Event::Malloc {
                        thread: 0,
                        site,
                        size,
                        slot,
                    });
                    for _ in 0..self.accesses_per_alloc {
                        // Offsets stay under the smallest size this slot
                        // ever holds, so the summarized path proves them.
                        let offset = rng.gen_range(0..base_size.min(16) / 8) * 8;
                        let thread = if self.cross_thread_readers && rng.gen_bool(0.5) {
                            1
                        } else {
                            0
                        };
                        events.push(Event::Access {
                            thread,
                            slot,
                            offset,
                            len: 8,
                            kind: AccessKind::Read,
                            site: use_site,
                        });
                    }
                    if site == bug && round + 1 == self.allocs_per_context {
                        events.push(Event::OverflowAccess {
                            thread: 0,
                            slot,
                            kind: AccessKind::Write,
                            site: bug_site,
                        });
                    }
                }
                events.push(Event::free(slot));
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_groups_contexts_behind_shared_helpers() {
        let app = SharedHelperApp::standard();
        let reg = app.registry();
        assert_eq!(reg.alloc_site_count(), app.contexts());
        // Contexts of one helper share the innermost frame; contexts of
        // different helpers do not.
        let a = reg.alloc_site(0).context.first_level();
        let b = reg.alloc_site(1).context.first_level();
        let other = reg.alloc_site(app.contexts_per_helper).context.first_level();
        assert_eq!(a, b);
        assert_ne!(a, other);
    }

    #[test]
    fn trace_is_deterministic_and_carries_exactly_one_overflow() {
        let app = SharedHelperApp::standard();
        assert_eq!(app.trace(3, None), app.trace(3, None));
        let overflows = app
            .trace(1, None)
            .iter()
            .filter(|e| matches!(e, Event::OverflowAccess { .. }))
            .count();
        assert_eq!(overflows, 1);
    }

    #[test]
    fn dirty_helper_only_perturbs_its_own_statements() {
        let app = SharedHelperApp::standard();
        let clean = app.trace(1, None);
        let dirty = app.trace(1, Some(3));
        assert_eq!(clean.len(), dirty.len());
        let changed: Vec<usize> = clean
            .iter()
            .zip(&dirty)
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        assert!(!changed.is_empty(), "the dirty helper must change");
        // Every changed event touches a slot owned by helper 3.
        let lo = 3 * app.contexts_per_helper;
        let hi = lo + app.contexts_per_helper;
        for i in changed {
            let slot = match dirty[i] {
                Event::Malloc { slot, .. } | Event::Access { slot, .. } => slot,
                ref other => panic!("unexpected changed event {other:?}"),
            };
            assert!((lo..hi).contains(&slot), "event {i} outside helper 3");
        }
    }
}
