//! Allocation and access sites for synthetic applications.
//!
//! Each modelled application owns a [`SiteRegistry`]: a set of allocation
//! calling contexts (each a multi-frame backtrace plus the cheap
//! *(first-level, stack-offset)* key CSOD hashes) and a set of access
//! sites (the statements that read and write heap memory, each tagged
//! with the module it lives in — which decides whether the ASan model
//! checks it).

use csod_ctx::{CallingContext, ContextKey, FrameTable};
use sim_machine::SiteToken;
use std::sync::Arc;

/// One allocation calling context of a modelled application.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// Index in the registry.
    pub index: usize,
    /// The cheap key CSOD hashes on every allocation.
    pub key: ContextKey,
    /// The full backtrace captured on first sight.
    pub context: CallingContext,
}

/// One heap-accessing statement of a modelled application.
#[derive(Debug, Clone)]
pub struct AccessSite {
    /// The token the machine carries into traps.
    pub token: SiteToken,
    /// The statement's full calling context (for CSOD's Figure-6 report).
    pub context: CallingContext,
    /// The module the statement is compiled into (for ASan's
    /// instrumentation decision).
    pub module: String,
}

/// The sites of one modelled application.
#[derive(Debug)]
pub struct SiteRegistry {
    frames: Arc<FrameTable>,
    app: String,
    alloc_sites: Vec<AllocSite>,
    access_sites: Vec<AccessSite>,
}

impl SiteRegistry {
    /// Creates a registry for application `app` over a shared frame table.
    pub fn new(app: &str, frames: Arc<FrameTable>) -> Self {
        SiteRegistry {
            frames,
            app: app.to_owned(),
            alloc_sites: Vec::new(),
            access_sites: Vec::new(),
        }
    }

    /// The shared frame table.
    pub fn frames(&self) -> &Arc<FrameTable> {
        &self.frames
    }

    /// The application name.
    pub fn app(&self) -> &str {
        &self.app
    }

    /// Adds an allocation site with a `depth`-frame backtrace, returning
    /// its index. Distinct indices produce distinct keys *and* distinct
    /// full contexts.
    pub fn add_alloc_site(&mut self, depth: usize) -> usize {
        let index = self.alloc_sites.len();
        let depth = depth.max(2);
        let mut locations = Vec::with_capacity(depth);
        // Innermost frame: the statement invoking malloc.
        locations.push(format!("{}/alloc/site_{index}.c:{}", self.app, 100 + index));
        for level in 1..depth - 1 {
            locations.push(format!(
                "{}/logic/layer{level}.c:{}",
                self.app,
                10 + (index * 7 + level * 13) % 900
            ));
        }
        locations.push(format!("{}/main.c:42", self.app));
        let context =
            CallingContext::from_locations(&self.frames, locations.iter().map(String::as_str));
        let key = ContextKey::new(
            context.first_level().expect("depth >= 2"),
            // Distinct stack offsets mimic distinct call paths.
            0x40 + (index as u64) * 0x10,
        );
        self.alloc_sites.push(AllocSite {
            index,
            key,
            context,
        });
        index
    }

    /// Adds `n` allocation sites of default depth and returns nothing;
    /// sites are indexed `0..n`.
    pub fn add_alloc_sites(&mut self, n: usize) {
        for _ in 0..n {
            self.add_alloc_site(4);
        }
    }

    /// Adds an allocation site whose *innermost* frame is the shared
    /// allocation helper `function` (e.g. `"xmalloc.c:100"`), returning
    /// its index. Distinct sites through the same helper share the
    /// malloc-invoking frame but keep distinct caller chains and keys —
    /// the shape that makes a per-function analysis lump contexts
    /// together while a context-sensitive one can tell them apart.
    pub fn add_alloc_site_via(&mut self, function: &str) -> usize {
        let index = self.alloc_sites.len();
        let locations = [
            // Innermost frame: the shared helper's malloc statement.
            format!("{}/alloc/{function}", self.app),
            // Distinct caller chain per site.
            format!("{}/caller/ctx_{index}.c:{}", self.app, 300 + index),
            format!("{}/main.c:42", self.app),
        ];
        let context =
            CallingContext::from_locations(&self.frames, locations.iter().map(String::as_str));
        let key = ContextKey::new(
            context.first_level().expect("three frames"),
            0x40 + (index as u64) * 0x10,
        );
        self.alloc_sites.push(AllocSite {
            index,
            key,
            context,
        });
        index
    }

    /// The allocation site at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn alloc_site(&self, index: usize) -> &AllocSite {
        &self.alloc_sites[index]
    }

    /// Number of allocation sites.
    pub fn alloc_site_count(&self) -> usize {
        self.alloc_sites.len()
    }

    /// Iterates over all allocation sites in index order.
    pub fn alloc_sites(&self) -> impl Iterator<Item = &AllocSite> {
        self.alloc_sites.iter()
    }

    /// Adds an access site living in `module` with a descriptive
    /// innermost frame `label` (e.g. `"memcpy-sse2-unaligned.S:81"`).
    pub fn add_access_site(&mut self, module: &str, label: &str) -> SiteToken {
        let token = SiteToken(self.access_sites.len() as u64);
        let context = CallingContext::from_locations(
            &self.frames,
            [
                format!("{module}/{label}"),
                format!("{}/logic/driver.c:{}", self.app, 200 + self.access_sites.len()),
                format!("{}/main.c:42", self.app),
            ]
            .iter()
            .map(String::as_str),
        );
        self.access_sites.push(AccessSite {
            token,
            context,
            module: module.to_owned(),
        });
        token
    }

    /// The access site behind `token`.
    ///
    /// # Panics
    ///
    /// Panics if the token did not come from this registry.
    pub fn access_site(&self, token: SiteToken) -> &AccessSite {
        &self.access_sites[token.0 as usize]
    }

    /// Iterates over all access sites.
    pub fn access_sites(&self) -> impl Iterator<Item = &AccessSite> {
        self.access_sites.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_sites_have_distinct_keys_and_contexts() {
        let frames = Arc::new(FrameTable::new());
        let mut reg = SiteRegistry::new("gzip", frames);
        reg.add_alloc_sites(10);
        assert_eq!(reg.alloc_site_count(), 10);
        for i in 0..10 {
            for j in 0..i {
                assert_ne!(reg.alloc_site(i).key, reg.alloc_site(j).key);
                assert_ne!(reg.alloc_site(i).context, reg.alloc_site(j).context);
            }
        }
    }

    #[test]
    fn contexts_have_requested_depth() {
        let frames = Arc::new(FrameTable::new());
        let mut reg = SiteRegistry::new("mysql", frames);
        let i = reg.add_alloc_site(6);
        assert_eq!(reg.alloc_site(i).context.depth(), 6);
        // Depth below 2 is clamped.
        let j = reg.add_alloc_site(0);
        assert_eq!(reg.alloc_site(j).context.depth(), 2);
    }

    #[test]
    fn shared_helper_sites_share_the_innermost_frame_only() {
        let frames = Arc::new(FrameTable::new());
        let mut reg = SiteRegistry::new("shapp", frames);
        let a = reg.add_alloc_site_via("xmalloc.c:100");
        let b = reg.add_alloc_site_via("xmalloc.c:100");
        let c = reg.add_alloc_site(4);
        let (sa, sb, sc) = (reg.alloc_site(a), reg.alloc_site(b), reg.alloc_site(c));
        // Same allocation function, different contexts and keys.
        assert_eq!(sa.context.first_level(), sb.context.first_level());
        assert_ne!(sa.context, sb.context);
        assert_ne!(sa.key, sb.key);
        assert_ne!(sa.context.first_level(), sc.context.first_level());
    }

    #[test]
    fn access_sites_carry_module() {
        let frames = Arc::new(FrameTable::new());
        let mut reg = SiteRegistry::new("nginx", frames);
        let t = reg.add_access_site("openssl", "ssl/t1_lib.c:2588");
        let site = reg.access_site(t);
        assert_eq!(site.module, "openssl");
        let rendered = site.context.render(reg.frames());
        assert!(rendered.contains("t1_lib.c:2588"));
        assert!(rendered.contains("nginx/main.c:42"));
    }

    #[test]
    fn tokens_are_dense() {
        let frames = Arc::new(FrameTable::new());
        let mut reg = SiteRegistry::new("x", frames);
        assert_eq!(reg.add_access_site("m", "a:1"), SiteToken(0));
        assert_eq!(reg.add_access_site("m", "b:2"), SiteToken(1));
        assert_eq!(reg.access_sites().count(), 2);
    }
}
