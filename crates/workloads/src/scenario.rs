//! A fluent builder for hand-written workload scenarios.
//!
//! The trace [`Event`] language is deliberately low-level; this builder
//! makes one-off scenarios (examples, regression tests, bug reports)
//! readable: it tracks slots and sites by name, assigns threads, and
//! yields the `(SiteRegistry, Vec<Event>)` pair the
//! [`TraceRunner`](crate::TraceRunner) consumes.

use crate::sites::SiteRegistry;
use crate::trace::Event;
use csod_ctx::FrameTable;
use sim_machine::{AccessKind, SiteToken};
use std::collections::HashMap;
use std::sync::Arc;

/// Builder state. See [`ScenarioBuilder::new`].
#[derive(Debug)]
pub struct ScenarioBuilder {
    registry: SiteRegistry,
    events: Vec<Event>,
    slots: HashMap<String, usize>,
    alloc_sites: HashMap<String, usize>,
    access_sites: HashMap<String, SiteToken>,
    threads: u8,
    current_thread: u8,
}

impl ScenarioBuilder {
    /// Starts a scenario for application `app` (the instrumented module
    /// name under ASan).
    pub fn new(app: &str) -> Self {
        ScenarioBuilder {
            registry: SiteRegistry::new(app, Arc::new(FrameTable::new())),
            events: Vec::new(),
            slots: HashMap::new(),
            alloc_sites: HashMap::new(),
            access_sites: HashMap::new(),
            threads: 1,
            current_thread: 0,
        }
    }

    /// Spawns an extra thread and switches subsequent events to it.
    pub fn on_new_thread(&mut self) -> &mut Self {
        self.events.push(Event::SpawnThread);
        self.threads += 1;
        self.current_thread = self.threads - 1;
        self
    }

    /// Switches subsequent events to thread `index` (0 = main).
    ///
    /// # Panics
    ///
    /// Panics if the thread has not been spawned.
    pub fn on_thread(&mut self, index: u8) -> &mut Self {
        assert!(index < self.threads, "thread {index} not spawned");
        self.current_thread = index;
        self
    }

    /// Allocates `size` bytes into the named object from the named
    /// allocation site (both created on first use).
    pub fn malloc(&mut self, object: &str, site: &str, size: u64) -> &mut Self {
        let site_index = match self.alloc_sites.get(site) {
            Some(&i) => i,
            None => {
                let i = self.registry.add_alloc_site(4);
                self.alloc_sites.insert(site.to_owned(), i);
                i
            }
        };
        let slot = match self.slots.get(object) {
            Some(&s) => s,
            None => {
                let s = self.slots.len();
                self.slots.insert(object.to_owned(), s);
                s
            }
        };
        self.events.push(Event::Malloc {
            thread: self.current_thread,
            site: site_index,
            size,
            slot,
        });
        self
    }

    /// Frees the named object.
    ///
    /// # Panics
    ///
    /// Panics if the object was never allocated.
    pub fn free(&mut self, object: &str) -> &mut Self {
        let slot = self.slot(object);
        self.events.push(Event::Free {
            thread: self.current_thread,
            slot,
        });
        self
    }

    /// `count` in-bounds accesses to the named object from a statement
    /// in `module` (the module decides ASan instrumentation coverage).
    pub fn touch(
        &mut self,
        object: &str,
        module: &str,
        kind: AccessKind,
        count: u64,
    ) -> &mut Self {
        let slot = self.slot(object);
        let site = self.access_site(module, "use");
        self.events.push(Event::AccessBurst {
            thread: self.current_thread,
            slot,
            count,
            kind,
            site,
        });
        self
    }

    /// THE BUG: a continuous overflow of the named object — the first
    /// out-of-bounds word plus `extent` further words, from `module`.
    pub fn overflow(
        &mut self,
        object: &str,
        module: &str,
        kind: AccessKind,
        extent: u64,
    ) -> &mut Self {
        let slot = self.slot(object);
        let site = self.access_site(module, "overflow");
        self.events.push(Event::OverflowAccess {
            thread: self.current_thread,
            slot,
            kind,
            site,
        });
        if extent > 0 {
            self.events.push(Event::OverflowBurst {
                thread: self.current_thread,
                slot,
                count: extent,
                kind,
                site,
            });
        }
        self
    }

    /// A use-after-free access to the named (already freed) object.
    pub fn use_after_free(&mut self, object: &str, module: &str, kind: AccessKind) -> &mut Self {
        let slot = self.slot(object);
        let site = self.access_site(module, "dangling");
        self.events.push(Event::DanglingAccess {
            thread: self.current_thread,
            slot,
            offset: 0,
            kind,
            site,
        });
        self
    }

    /// Non-heap CPU work.
    pub fn compute(&mut self, ops: u64) -> &mut Self {
        self.events.push(Event::Compute {
            thread: self.current_thread,
            ops,
        });
        self
    }

    /// An I/O wait in milliseconds.
    pub fn io_wait_ms(&mut self, ms: u64) -> &mut Self {
        self.events.push(Event::IoWait { ns: ms * 1_000_000 });
        self
    }

    /// Finishes the scenario.
    pub fn build(self) -> (SiteRegistry, Vec<Event>) {
        (self.registry, self.events)
    }

    fn slot(&self, object: &str) -> usize {
        *self
            .slots
            .get(object)
            .unwrap_or_else(|| panic!("unknown object `{object}` (allocate it first)"))
    }

    fn access_site(&mut self, module: &str, label: &str) -> SiteToken {
        let key = format!("{module}/{label}");
        match self.access_sites.get(&key) {
            Some(&t) => t,
            None => {
                let t = self
                    .registry
                    .add_access_site(module, &format!("{label}.c:1"));
                self.access_sites.insert(key, t);
                t
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{ToolSpec, TraceRunner};
    use csod_core::CsodConfig;

    #[test]
    fn builder_produces_a_detectable_scenario() {
        let mut b = ScenarioBuilder::new("app");
        b.malloc("buf", "parser.c:10", 64)
            .touch("buf", "app", AccessKind::Write, 8)
            .overflow("buf", "app", AccessKind::Write, 4)
            .free("buf");
        let (registry, trace) = b.build();
        let outcome =
            TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::default())).run(trace);
        assert!(outcome.detected);
    }

    #[test]
    fn builder_reuses_named_sites_and_slots() {
        let mut b = ScenarioBuilder::new("app");
        b.malloc("a", "site1", 16)
            .malloc("b", "site1", 16)
            .malloc("a", "site2", 32);
        let (registry, trace) = b.build();
        assert_eq!(registry.alloc_site_count(), 2);
        // "a" reuses slot 0 on its second allocation.
        let slots: Vec<usize> = trace
            .iter()
            .filter_map(|e| match e {
                Event::Malloc { slot, .. } => Some(*slot),
                _ => None,
            })
            .collect();
        assert_eq!(slots, vec![0, 1, 0]);
    }

    #[test]
    fn threads_are_tracked() {
        let mut b = ScenarioBuilder::new("app");
        b.malloc("x", "s", 8);
        b.on_new_thread().malloc("y", "s", 8);
        b.on_thread(0).free("x");
        let (_, trace) = b.build();
        assert!(matches!(trace[0], Event::Malloc { thread: 0, .. }));
        assert!(matches!(trace[1], Event::SpawnThread));
        assert!(matches!(trace[2], Event::Malloc { thread: 1, .. }));
        assert!(matches!(trace[3], Event::Free { thread: 0, .. }));
    }

    #[test]
    #[should_panic(expected = "unknown object")]
    fn touching_unallocated_object_panics() {
        let mut b = ScenarioBuilder::new("app");
        b.touch("ghost", "app", AccessKind::Read, 1);
    }

    #[test]
    #[should_panic(expected = "not spawned")]
    fn switching_to_missing_thread_panics() {
        let mut b = ScenarioBuilder::new("app");
        b.on_thread(1);
    }

    #[test]
    fn use_after_free_flows_through() {
        use sampler_sim::SamplerConfig;
        let mut b = ScenarioBuilder::new("app");
        b.malloc("buf", "s", 64)
            .free("buf")
            .use_after_free("buf", "app", AccessKind::Read);
        let (registry, trace) = b.build();
        let outcome = TraceRunner::new(
            &registry,
            ToolSpec::Sampler(SamplerConfig {
                sample_period: 1,
                ..SamplerConfig::default()
            }),
        )
        .run(trace);
        assert!(outcome.detected);
        assert!(outcome.reports[0].contains("use-after-free"));
    }
}
