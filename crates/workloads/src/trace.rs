//! The event language application models are written in.
//!
//! A modelled program is a stream of [`Event`]s executed by the
//! [`TraceRunner`](crate::TraceRunner) against a machine, a heap and a
//! detection tool. Events reference objects through *slots* (virtual
//! registers holding object pointers), so the same trace can run under
//! any tool even though each tool returns different concrete addresses.

use sim_machine::{AccessKind, SiteToken};

/// Identifier of a simulated thread within a trace (index into the
/// threads the trace has spawned; 0 is the main thread).
pub type TraceThread = u8;

/// One step of a modelled program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Spawn one more thread; it becomes the highest thread index.
    SpawnThread,
    /// Allocate `size` bytes from allocation site `site`, storing the
    /// pointer in `slot` (any object already in the slot is leaked).
    Malloc {
        /// Executing thread.
        thread: TraceThread,
        /// Allocation-site index in the app's registry.
        site: usize,
        /// Requested size in bytes.
        size: u64,
        /// Destination slot.
        slot: usize,
    },
    /// Free the object held in `slot` (no-op if the slot is empty).
    Free {
        /// Executing thread.
        thread: TraceThread,
        /// Slot holding the object.
        slot: usize,
    },
    /// An in-bounds access of `len` bytes at `offset` into the object in
    /// `slot` (no-op if the slot is empty).
    Access {
        /// Executing thread.
        thread: TraceThread,
        /// Slot holding the object.
        slot: usize,
        /// Byte offset into the object.
        offset: u64,
        /// Access length in bytes.
        len: u64,
        /// Load or store.
        kind: AccessKind,
        /// The performing statement.
        site: SiteToken,
    },
    /// THE BUG: a continuous overflow touching the word immediately past
    /// the object in `slot` — "the next word beyond the object's
    /// boundary" (paper Section VI).
    OverflowAccess {
        /// Executing thread.
        thread: TraceThread,
        /// Slot holding the overflowed object.
        slot: usize,
        /// Over-read or over-write.
        kind: AccessKind,
        /// The overflowing statement.
        site: SiteToken,
    },
    /// The continuation of a continuous overflow: `count` further
    /// accesses beyond the boundary of the object in `slot`, modelled in
    /// bulk. Heartbleed-style over-reads copy kilobytes — which is what
    /// gives access-sampling detectors (the Sampler baseline) their
    /// chance; watchpoint and redzone detectors already fired on the
    /// first out-of-bounds word.
    OverflowBurst {
        /// Executing thread.
        thread: TraceThread,
        /// Slot holding the overflowed object.
        slot: usize,
        /// Number of out-of-bounds accesses.
        count: u64,
        /// Over-read or over-write.
        kind: AccessKind,
        /// The overflowing statement.
        site: SiteToken,
    },
    /// `count` in-bounds 8-byte accesses at random-ish positions of the
    /// object in `slot`, modelled in bulk (full cost, one representative
    /// real access). This keeps access-dense performance workloads
    /// tractable without changing any overhead ratio.
    AccessBurst {
        /// Executing thread.
        thread: TraceThread,
        /// Slot holding the object.
        slot: usize,
        /// Number of accesses.
        count: u64,
        /// Load or store.
        kind: AccessKind,
        /// The performing statement.
        site: SiteToken,
    },
    /// A use-after-free: an access to the (freed) object that *used* to
    /// live in `slot`. Out of scope for CSOD (the watchpoint is removed
    /// at free); ASan's quarantine and Sampler's freed-object tracking
    /// can both see it.
    DanglingAccess {
        /// Executing thread.
        thread: TraceThread,
        /// Slot whose previous occupant is accessed after free.
        slot: usize,
        /// Byte offset into the dead object.
        offset: u64,
        /// Load or store.
        kind: AccessKind,
        /// The performing statement.
        site: SiteToken,
    },
    /// CPU work that touches no heap object.
    Compute {
        /// Executing thread.
        thread: TraceThread,
        /// Abstract operation count.
        ops: u64,
    },
    /// An I/O wait (network/disk); tools cannot shorten it.
    IoWait {
        /// Wait length in nanoseconds of virtual time.
        ns: u64,
    },
}

impl Event {
    /// Convenience constructor for a single-threaded malloc.
    pub fn malloc(site: usize, size: u64, slot: usize) -> Event {
        Event::Malloc {
            thread: 0,
            site,
            size,
            slot,
        }
    }

    /// Convenience constructor for a single-threaded free.
    pub fn free(slot: usize) -> Event {
        Event::Free { thread: 0, slot }
    }

    /// Convenience constructor for a single-threaded in-bounds access.
    pub fn access(slot: usize, offset: u64, len: u64, kind: AccessKind, site: SiteToken) -> Event {
        Event::Access {
            thread: 0,
            slot,
            offset,
            len,
            kind,
            site,
        }
    }

    /// Convenience constructor for a single-threaded access burst.
    pub fn burst(slot: usize, count: u64, kind: AccessKind, site: SiteToken) -> Event {
        Event::AccessBurst {
            thread: 0,
            slot,
            count,
            kind,
            site,
        }
    }

    /// Convenience constructor for a single-threaded overflow burst.
    pub fn overflow_burst(slot: usize, count: u64, kind: AccessKind, site: SiteToken) -> Event {
        Event::OverflowBurst {
            thread: 0,
            slot,
            count,
            kind,
            site,
        }
    }

    /// Convenience constructor for the single-threaded overflow event.
    pub fn overflow(slot: usize, kind: AccessKind, site: SiteToken) -> Event {
        Event::OverflowAccess {
            thread: 0,
            slot,
            kind,
            site,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convenience_constructors_use_main_thread() {
        assert_eq!(
            Event::malloc(3, 64, 1),
            Event::Malloc {
                thread: 0,
                site: 3,
                size: 64,
                slot: 1
            }
        );
        assert_eq!(Event::free(2), Event::Free { thread: 0, slot: 2 });
        let a = Event::access(1, 8, 4, AccessKind::Read, SiteToken(5));
        assert!(matches!(a, Event::Access { offset: 8, len: 4, .. }));
        let o = Event::overflow(1, AccessKind::Write, SiteToken(6));
        assert!(matches!(o, Event::OverflowAccess { slot: 1, .. }));
    }
}
