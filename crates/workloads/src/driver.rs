//! The trace runner: executes an event stream under a detection tool.

use crate::sites::SiteRegistry;
use crate::trace::Event;
use asan_sim::{Asan, AsanConfig};
use csod_core::{Csod, CsodConfig};
use csod_ctx::ContextKey;
use csod_trace::TraceEventKind;
use sampler_sim::{Sampler, SamplerConfig};
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{AccessKind, Machine, SiteToken, ThreadId, VirtAddr};
use std::fmt;
use std::sync::Arc;

/// Which tool (if any) a run executes under.
// A handful of `ToolSpec`s exist per comparison run, so the size gap
// between `Csod(CsodConfig)` and `Baseline` costs nothing; boxing the
// config would only add a hop to every accessor.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum ToolSpec {
    /// The unprotected program — the normalization baseline of Figure 7
    /// and the "Original" column of Table V.
    Baseline,
    /// CSOD with the given configuration.
    Csod(CsodConfig),
    /// The ASan model; `instrumented` lists the modules compiled with
    /// instrumentation (the application itself, but typically not
    /// external libraries).
    Asan {
        /// Tool configuration.
        config: AsanConfig,
        /// Instrumented module names.
        instrumented: Vec<String>,
    },
    /// The Sampler model (MICRO'18): PMU access sampling over a
    /// guard-zone allocator.
    Sampler(SamplerConfig),
}

impl ToolSpec {
    /// Short label used in table output.
    pub fn label(&self) -> &'static str {
        match self {
            ToolSpec::Baseline => "baseline",
            ToolSpec::Csod(c) if c.evidence => "csod",
            ToolSpec::Csod(_) => "csod-no-evidence",
            ToolSpec::Asan { .. } => "asan",
            ToolSpec::Sampler(_) => "sampler",
        }
    }
}

enum ToolState {
    Baseline,
    Csod(Box<Csod>),
    Asan(Box<Asan>),
    Sampler(Box<Sampler>),
}

impl fmt::Debug for ToolState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ToolState::Baseline => "Baseline",
            ToolState::Csod(_) => "Csod",
            ToolState::Asan(_) => "Asan",
            ToolState::Sampler(_) => "Sampler",
        };
        f.debug_struct(name).finish_non_exhaustive()
    }
}

/// Everything a finished run reports back to the experiment harnesses.
#[derive(Debug, Clone, Default)]
pub struct RunOutcome {
    /// Tool label (see [`ToolSpec::label`]).
    pub tool: String,
    /// Any overflow detected (by any mechanism the tool has).
    pub detected: bool,
    /// CSOD: a hardware watchpoint fired (precise detection).
    pub watchpoint_detected: bool,
    /// CSOD: canary evidence found at free or exit.
    pub evidence_detected: bool,
    /// Normalized overhead versus the tool-free execution of the same
    /// work (Figure 7).
    pub overhead: f64,
    /// Total virtual run time in nanoseconds.
    pub total_ns: u64,
    /// Application CPU nanoseconds.
    pub app_ns: u64,
    /// Tool CPU nanoseconds.
    pub tool_ns: u64,
    /// I/O wait nanoseconds.
    pub io_ns: u64,
    /// Peak heap residency in KiB (Table V).
    pub peak_heap_kb: u64,
    /// Tool memory outside the heap blocks (ASan shadow), KiB.
    pub tool_extra_kb: u64,
    /// Allocations performed.
    pub allocations: u64,
    /// Distinct allocation contexts CSOD observed (Table IV "CC").
    pub distinct_contexts: usize,
    /// Objects CSOD ever watched (Table IV "WT").
    pub watched_times: u64,
    /// Watchpoint traps delivered.
    pub traps: u64,
    /// CSOD with priors: allocations from proven-safe contexts.
    pub proven_safe_allocs: u64,
    /// CSOD with priors: watchpoint installs spent on proven-safe
    /// contexts (the waste the static analysis is meant to cut).
    pub proven_safe_installs: u64,
    /// CSOD with priors: installs on statically suspicious contexts.
    pub suspicious_installs: u64,
    /// CSOD with priors: availability bypasses denied on proven-safe
    /// contexts — watch slots the priors saved outright.
    pub prior_availability_skips: u64,
    /// CSOD with priors: overflows from proven-safe contexts. Any
    /// nonzero value is an analyzer soundness bug.
    pub proven_safe_overflows: u64,
    /// CSOD: frees the watched-address filter proved unwatched.
    pub frees_fast_filtered: u64,
    /// CSOD: Figure-4 teardowns paid through batched drains.
    pub teardowns_batched: u64,
    /// CSOD: stale traps drained after logical removal (counted, never
    /// reported).
    pub stale_traps_suppressed: u64,
    /// System calls issued.
    pub syscalls: u64,
    /// Rendered bug reports.
    pub reports: Vec<String>,
    /// CSOD: per-context watch counts at exit, for attributing install
    /// spending to risk classes regardless of whether priors were on.
    pub context_watch_counts: Vec<(ContextKey, u64)>,
    /// CSOD: trace events drained from the per-thread rings at exit
    /// (zero when tracing is off at run time or compiled out).
    pub trace_events: u64,
    /// CSOD: trace events lost to ring wrap-around.
    pub trace_dropped: u64,
    /// CSOD: per-kind trace event counts, kinds never seen omitted.
    pub trace_counts: Vec<(TraceEventKind, u64)>,
}

/// Executes [`Event`]s against a machine, heap and tool.
///
/// # Examples
///
/// ```
/// use csod_core::CsodConfig;
/// use csod_ctx::FrameTable;
/// use sim_machine::AccessKind;
/// use std::sync::Arc;
/// use workloads::{Event, SiteRegistry, ToolSpec, TraceRunner};
///
/// let mut reg = SiteRegistry::new("demo", Arc::new(FrameTable::new()));
/// reg.add_alloc_sites(1);
/// let bug_site = reg.add_access_site("demo", "copy.c:12");
///
/// let trace = vec![
///     Event::malloc(0, 64, 0),
///     Event::access(0, 0, 8, AccessKind::Write, bug_site),
///     Event::overflow(0, AccessKind::Write, bug_site),
/// ];
/// let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(trace);
/// assert!(outcome.detected);
/// ```
#[derive(Debug)]
pub struct TraceRunner<'r> {
    registry: &'r SiteRegistry,
    machine: Machine,
    heap: SimHeap,
    tool: ToolState,
    tool_label: String,
    threads: Vec<ThreadId>,
    slots: Vec<Option<(VirtAddr, u64)>>,
    /// Last freed occupant of each slot (address, size) for
    /// use-after-free events.
    ghosts: std::collections::HashMap<usize, (VirtAddr, u64)>,
}

impl<'r> TraceRunner<'r> {
    /// Creates a runner for one execution under `tool`.
    pub fn new(registry: &'r SiteRegistry, tool: ToolSpec) -> Self {
        // Hypothetical-hardware runs (the register-count ablation) need
        // a machine with matching debug registers.
        let mut machine = match &tool {
            ToolSpec::Csod(config) if config.watchpoint_slots > 4 => {
                Machine::with_debug_registers(config.watchpoint_slots)
            }
            _ => Machine::new(),
        };
        let heap = SimHeap::new(&mut machine, HeapConfig::default())
            .expect("fresh machine has a free heap region");
        let tool_label = tool.label().to_owned();
        let tool = match tool {
            ToolSpec::Baseline => ToolState::Baseline,
            ToolSpec::Csod(config) => {
                let mut csod = Csod::new(config, Arc::clone(registry.frames()));
                for site in registry.access_sites() {
                    csod.register_site(site.token, site.context.clone());
                }
                ToolState::Csod(Box::new(csod))
            }
            ToolSpec::Asan {
                config,
                instrumented,
            } => {
                let mut asan = Asan::new(config);
                for module in &instrumented {
                    asan.instrument_module(module);
                }
                ToolState::Asan(Box::new(asan))
            }
            ToolSpec::Sampler(config) => {
                ToolState::Sampler(Box::new(Sampler::new(&mut machine, config)))
            }
        };
        // One-time runtime start-up cost (Section V-B: visible in short
        // runs such as Ferret).
        match &tool {
            ToolState::Baseline => {}
            ToolState::Csod(_) => {
                let init = machine.costs().csod_init;
                machine.charge(sim_machine::CostDomain::Tool, init);
            }
            ToolState::Asan(_) => {
                let init = machine.costs().asan_init;
                machine.charge(sim_machine::CostDomain::Tool, init);
            }
            ToolState::Sampler(_) => {
                // Sampler's kernel driver + allocator swap: model like
                // the CSOD runtime's init.
                let init = machine.costs().csod_init;
                machine.charge(sim_machine::CostDomain::Tool, init);
            }
        }
        TraceRunner {
            registry,
            machine,
            heap,
            tool,
            tool_label,
            threads: vec![ThreadId::MAIN],
            slots: Vec::new(),
            ghosts: std::collections::HashMap::new(),
        }
    }

    /// Executes one event.
    pub fn step(&mut self, event: &Event) {
        match *event {
            Event::SpawnThread => {
                let tid = match &mut self.tool {
                    ToolState::Csod(csod) => csod.spawn_thread(&mut self.machine),
                    _ => self.machine.spawn_thread(),
                };
                self.threads.push(tid);
            }
            Event::Malloc {
                thread,
                site,
                size,
                slot,
            } => {
                let tid = self.thread(thread);
                let addr = match &mut self.tool {
                    ToolState::Baseline => self
                        .heap
                        .malloc(&mut self.machine, size)
                        .expect("trace fits in the heap"),
                    ToolState::Csod(csod) => {
                        let alloc_site = self.registry.alloc_site(site);
                        csod.malloc(
                            &mut self.machine,
                            &mut self.heap,
                            tid,
                            size,
                            alloc_site.key,
                            &alloc_site.context,
                        )
                        .expect("trace fits in the heap")
                    }
                    ToolState::Asan(asan) => asan
                        .malloc(&mut self.machine, &mut self.heap, size)
                        .expect("trace fits in the heap"),
                    ToolState::Sampler(sampler) => sampler
                        .malloc(&mut self.machine, &mut self.heap, size)
                        .expect("trace fits in the heap"),
                };
                if self.slots.len() <= slot {
                    self.slots.resize(slot + 1, None);
                }
                self.slots[slot] = Some((addr, size));
            }
            Event::Free { thread, slot } => {
                let tid = self.thread(thread);
                let Some((addr, size)) = self.slot(slot) else {
                    return;
                };
                self.slots[slot] = None;
                self.ghosts.insert(slot, (addr, size));
                match &mut self.tool {
                    ToolState::Baseline => {
                        self.heap
                            .free(&mut self.machine, addr)
                            .expect("slot holds a live object");
                    }
                    ToolState::Csod(csod) => {
                        csod.free(&mut self.machine, &mut self.heap, tid, addr)
                            .expect("slot holds a live object");
                    }
                    ToolState::Asan(asan) => {
                        asan.free(&mut self.machine, &mut self.heap, addr)
                            .expect("slot holds a live object");
                    }
                    ToolState::Sampler(sampler) => {
                        sampler
                            .free(&mut self.machine, &mut self.heap, addr)
                            .expect("slot holds a live object");
                    }
                }
            }
            Event::Access {
                thread,
                slot,
                offset,
                len,
                kind,
                site,
            } => {
                let Some((addr, size)) = self.slot(slot) else {
                    return;
                };
                // Clamp to stay in bounds: traces express intent, the
                // runner enforces it (only OverflowAccess goes out).
                let offset = offset.min(size.saturating_sub(1));
                let len = len.max(1).min(size - offset);
                self.do_access(thread, addr + offset, len, kind, site);
            }
            Event::OverflowAccess {
                thread,
                slot,
                kind,
                site,
            } => {
                let Some((addr, size)) = self.slot(slot) else {
                    return;
                };
                // The next word beyond the object's boundary: continuous
                // overflows always touch it (paper Section VI).
                let boundary = addr + size.max(1).div_ceil(8) * 8;
                self.do_access(thread, boundary, 8, kind, site);
            }
            Event::OverflowBurst {
                thread,
                slot,
                count,
                kind,
                site,
            } => {
                let Some((addr, size)) = self.slot(slot) else {
                    return;
                };
                let boundary = addr + size.max(1).div_ceil(8) * 8;
                self.do_access_burst(thread, boundary, 8, kind, site, count);
            }
            Event::AccessBurst {
                thread,
                slot,
                count,
                kind,
                site,
            } => {
                let Some((addr, size)) = self.slot(slot) else {
                    return;
                };
                // Representative word: the first aligned word (always
                // in-bounds for the >=8-byte objects traces allocate).
                let len = size.min(8);
                self.do_access_burst(thread, addr, len, kind, site, count);
            }
            Event::DanglingAccess {
                thread,
                slot,
                offset,
                kind,
                site,
            } => {
                let Some(&(addr, size)) = self.ghosts.get(&slot) else {
                    return;
                };
                let offset = offset.min(size.saturating_sub(1));
                let len = (size - offset).clamp(1, 8);
                self.do_access(thread, addr + offset, len, kind, site);
            }
            Event::Compute { thread, ops } => {
                let _ = thread;
                self.machine.app_compute(ops);
            }
            Event::IoWait { ns } => {
                self.machine.wait_io(sim_machine::VirtDuration::from_nanos(ns));
            }
        }
    }

    fn do_access(
        &mut self,
        thread: u8,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        site: SiteToken,
    ) {
        let tid = self.thread(thread);
        self.machine.set_current_site(tid, site);
        match &mut self.tool {
            ToolState::Baseline => {
                let _ = self.machine.app_access(tid, addr, len, kind);
            }
            ToolState::Csod(csod) => {
                let _ = self.machine.app_access(tid, addr, len, kind);
                if self.machine.has_pending_signals() {
                    csod.poll(&mut self.machine);
                }
            }
            ToolState::Asan(asan) => {
                let module = &self.registry.access_site(site).module;
                let _ = asan.access(&mut self.machine, tid, addr, len, kind, module, site);
            }
            ToolState::Sampler(sampler) => {
                let _ = self.machine.app_access(tid, addr, len, kind);
                sampler.poll(&mut self.machine);
            }
        }
    }

    fn do_access_burst(
        &mut self,
        thread: u8,
        addr: VirtAddr,
        len: u64,
        kind: AccessKind,
        site: SiteToken,
        count: u64,
    ) {
        let tid = self.thread(thread);
        self.machine.set_current_site(tid, site);
        match &mut self.tool {
            ToolState::Baseline => {
                let _ = self.machine.app_access_bulk(tid, addr, len, kind, count);
            }
            ToolState::Csod(csod) => {
                let _ = self.machine.app_access_bulk(tid, addr, len, kind, count);
                if self.machine.has_pending_signals() {
                    csod.poll(&mut self.machine);
                }
            }
            ToolState::Asan(asan) => {
                let module = &self.registry.access_site(site).module;
                let _ = asan.access_burst(
                    &mut self.machine,
                    tid,
                    addr,
                    len,
                    kind,
                    module,
                    site,
                    count,
                );
            }
            ToolState::Sampler(sampler) => {
                let _ = self.machine.app_access_bulk(tid, addr, len, kind, count);
                sampler.poll(&mut self.machine);
            }
        }
    }

    fn thread(&self, index: u8) -> ThreadId {
        self.threads
            .get(index as usize)
            .copied()
            .unwrap_or(ThreadId::MAIN)
    }

    fn slot(&self, slot: usize) -> Option<(VirtAddr, u64)> {
        self.slots.get(slot).copied().flatten()
    }

    /// Executes every event of `trace` and finishes the run.
    pub fn run(mut self, trace: impl IntoIterator<Item = Event>) -> RunOutcome {
        for event in trace {
            self.step(&event);
        }
        self.finish()
    }

    /// Ends the execution: runs the tool's termination path and collects
    /// the outcome.
    pub fn finish(mut self) -> RunOutcome {
        let mut outcome = RunOutcome {
            tool: self.tool_label.clone(),
            ..RunOutcome::default()
        };
        match &mut self.tool {
            ToolState::Baseline => {}
            ToolState::Csod(csod) => {
                csod.finish(&mut self.machine);
                let stats = csod.stats();
                outcome.detected = csod.detected();
                outcome.watchpoint_detected = csod.detected_by_watchpoint();
                outcome.evidence_detected =
                    stats.canary_free_hits + stats.canary_exit_hits > 0;
                outcome.allocations = stats.allocations;
                outcome.distinct_contexts = csod.distinct_contexts();
                outcome.watched_times = csod.watchpoint_stats().installs;
                outcome.traps = stats.traps;
                outcome.proven_safe_allocs = stats.proven_safe_allocs;
                outcome.proven_safe_installs = stats.proven_safe_installs;
                outcome.suspicious_installs = stats.suspicious_installs;
                outcome.prior_availability_skips = stats.prior_availability_skips;
                outcome.proven_safe_overflows = stats.proven_safe_overflows;
                outcome.frees_fast_filtered = stats.frees_fast_filtered;
                outcome.teardowns_batched = stats.teardowns_batched;
                outcome.stale_traps_suppressed = stats.stale_traps_suppressed;
                outcome.context_watch_counts = csod
                    .sampling()
                    .snapshot()
                    .into_iter()
                    .map(|(key, state)| (key, state.watch_count))
                    .collect();
                outcome.reports = csod
                    .reports()
                    .iter()
                    .map(|r| r.render(csod.frames()))
                    .collect();
                let trace = csod.drain_trace();
                outcome.trace_events = trace.events.len() as u64;
                outcome.trace_dropped = trace.dropped;
                outcome.trace_counts = trace.counts();
            }
            ToolState::Asan(asan) => {
                asan.finish(&mut self.machine, &mut self.heap);
                outcome.detected = asan.detected();
                outcome.allocations = asan.stats().allocations;
                outcome.tool_extra_kb = asan.peak_shadow_bytes() / 1024;
                outcome.reports = asan.reports().iter().map(ToString::to_string).collect();
            }
            ToolState::Sampler(sampler) => {
                sampler.finish(&mut self.machine);
                outcome.detected = sampler.detected();
                outcome.allocations = sampler.stats().allocations;
                outcome.reports = sampler.reports().iter().map(ToString::to_string).collect();
            }
        }
        if outcome.allocations == 0 {
            outcome.allocations = self.heap.stats().allocs;
        }
        let counter = self.machine.counter();
        outcome.overhead = counter.normalized_overhead();
        outcome.total_ns = counter.total_ns();
        outcome.app_ns = counter.app_ns();
        outcome.tool_ns = counter.tool_ns();
        outcome.io_ns = counter.io_ns();
        outcome.syscalls = counter.syscalls();
        outcome.peak_heap_kb = self.heap.stats().peak_in_use_bytes / 1024;
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_ctx::FrameTable;

    fn registry() -> SiteRegistry {
        let mut reg = SiteRegistry::new("demo", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(4);
        reg.add_access_site("demo", "use.c:10");
        reg.add_access_site("libfoo.so", "foo.c:99");
        reg
    }

    fn bug_trace(site: SiteToken, kind: AccessKind) -> Vec<Event> {
        vec![
            Event::malloc(0, 64, 0),
            Event::access(0, 0, 8, AccessKind::Write, site),
            Event::overflow(0, kind, site),
            Event::free(0),
        ]
    }

    #[test]
    fn baseline_detects_nothing_and_has_unit_overhead() {
        let reg = registry();
        let outcome =
            TraceRunner::new(&reg, ToolSpec::Baseline).run(bug_trace(SiteToken(0), AccessKind::Write));
        assert!(!outcome.detected);
        assert_eq!(outcome.overhead, 1.0);
        assert_eq!(outcome.tool_ns, 0);
        assert_eq!(outcome.allocations, 1);
    }

    #[test]
    fn csod_detects_the_watched_overflow() {
        let reg = registry();
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default()))
            .run(bug_trace(SiteToken(0), AccessKind::Read));
        assert!(outcome.detected);
        assert!(outcome.watchpoint_detected);
        assert_eq!(outcome.watched_times, 1);
        assert!(outcome.overhead > 1.0);
        assert!(outcome.reports[0].contains("over-read"));
        assert!(outcome.reports[0].contains("use.c:10"));
    }

    #[test]
    fn asan_detects_only_in_instrumented_modules() {
        let reg = registry();
        let spec = || ToolSpec::Asan {
            config: AsanConfig::default(),
            instrumented: vec!["demo".into()],
        };
        // Overflow from instrumented module: detected.
        let outcome = TraceRunner::new(&reg, spec()).run(bug_trace(SiteToken(0), AccessKind::Write));
        assert!(outcome.detected);
        // Same overflow performed inside libfoo.so: missed.
        let outcome = TraceRunner::new(&reg, spec()).run(bug_trace(SiteToken(1), AccessKind::Write));
        assert!(!outcome.detected);
    }

    #[test]
    fn evidence_detects_unwatched_overwrite() {
        let reg = registry();
        // Fill all four watchpoints with other contexts first, then
        // overflow an unwatched object; the canary catches it at free.
        let mut trace = Vec::new();
        for i in 0..4 {
            trace.push(Event::malloc(i, 32, i));
        }
        // Use a distinct context? Only 4 sites; reuse site 3 so its
        // probability halves and the new object is likely unwatched.
        trace.push(Event::malloc(3, 32, 5));
        trace.push(Event::overflow(5, AccessKind::Write, SiteToken(0)));
        trace.push(Event::free(5));
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(trace);
        assert!(outcome.detected);
    }

    #[test]
    fn accesses_are_clamped_in_bounds() {
        let reg = registry();
        let trace = vec![
            Event::malloc(0, 16, 0),
            // Deliberately out-of-range intent: clamped, so no report.
            Event::access(0, 120, 64, AccessKind::Read, SiteToken(0)),
        ];
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(trace);
        assert!(!outcome.detected);
    }

    #[test]
    fn empty_slots_are_ignored() {
        let reg = registry();
        let trace = vec![
            Event::free(3),
            Event::access(9, 0, 8, AccessKind::Read, SiteToken(0)),
            Event::overflow(2, AccessKind::Write, SiteToken(0)),
        ];
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(trace);
        assert!(!outcome.detected);
        assert_eq!(outcome.allocations, 0);
    }

    #[test]
    fn threads_round_trip() {
        let reg = registry();
        let trace = vec![
            Event::SpawnThread,
            Event::Malloc {
                thread: 1,
                site: 0,
                size: 64,
                slot: 0,
            },
            Event::OverflowAccess {
                thread: 1,
                slot: 0,
                kind: AccessKind::Write,
                site: SiteToken(0),
            },
        ];
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(trace);
        assert!(outcome.detected);
    }

    #[test]
    fn io_wait_dilutes_overhead() {
        let reg = registry();
        let cpu_trace = vec![Event::malloc(0, 64, 0), Event::free(0)];
        let io_trace = vec![
            Event::malloc(0, 64, 0),
            Event::free(0),
            Event::IoWait { ns: 100_000_000 },
        ];
        let cpu = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(cpu_trace);
        let io = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default())).run(io_trace);
        assert!(io.overhead < cpu.overhead);
    }

    #[test]
    fn use_after_free_visibility_per_tool() {
        use sampler_sim::SamplerConfig;
        let reg = registry();
        let uaf_trace = || {
            vec![
                Event::malloc(0, 64, 0),
                Event::free(0),
                Event::DanglingAccess {
                    thread: 0,
                    slot: 0,
                    offset: 8,
                    kind: AccessKind::Read,
                    site: SiteToken(0),
                },
            ]
        };
        // ASan: quarantined memory stays poisoned -> detected.
        let asan = TraceRunner::new(
            &reg,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: vec!["demo".into()],
            },
        )
        .run(uaf_trace());
        assert!(asan.detected, "ASan sees the UAF");
        assert!(asan.reports[0].contains("use-after-free"));
        // Sampler (period 1): freed-object tracking -> detected.
        let sampler = TraceRunner::new(
            &reg,
            ToolSpec::Sampler(SamplerConfig {
                sample_period: 1,
                ..SamplerConfig::default()
            }),
        )
        .run(uaf_trace());
        assert!(sampler.detected, "Sampler sees the UAF");
        // CSOD: watchpoint removed at free; UAF is out of scope.
        let csod = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default()))
            .run(uaf_trace());
        assert!(!csod.detected, "UAF is outside CSOD's scope (paper Section I)");
    }

    #[test]
    fn run_outcome_carries_trace_summary() {
        let reg = registry();
        let outcome = TraceRunner::new(&reg, ToolSpec::Csod(CsodConfig::default()))
            .run(bug_trace(SiteToken(0), AccessKind::Write));
        if csod_trace::trace_compiled_off() {
            assert_eq!(outcome.trace_events, 0);
            assert!(outcome.trace_counts.is_empty());
        } else {
            assert!(outcome.trace_events > 0);
            let kinds: Vec<_> = outcome.trace_counts.iter().map(|(k, _)| *k).collect();
            assert!(kinds.contains(&TraceEventKind::AllocSampled));
            assert!(kinds.contains(&TraceEventKind::WatchInstalled));
            assert!(kinds.contains(&TraceEventKind::TrapFired));
        }
    }

    #[test]
    fn labels_distinguish_configurations() {
        assert_eq!(ToolSpec::Baseline.label(), "baseline");
        assert_eq!(ToolSpec::Csod(CsodConfig::default()).label(), "csod");
        assert_eq!(
            ToolSpec::Csod(CsodConfig::without_evidence()).label(),
            "csod-no-evidence"
        );
    }
}
