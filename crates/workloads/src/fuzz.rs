//! Randomized workload generation for pipeline-level property testing.
//!
//! [`FuzzWorkload`] draws a random-but-valid application (context count,
//! allocation pattern, lifetimes, access traffic, thread count, and
//! optionally one injected continuous overflow) from a seed. The test
//! suites use it to check end-to-end invariants the hand-written models
//! cannot cover exhaustively: *no tool ever reports a bug in a clean
//! workload; every tool's bookkeeping survives any workload shape*.

use crate::sites::SiteRegistry;
use crate::trace::Event;
use csod_ctx::FrameTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_machine::AccessKind;
use std::sync::Arc;

/// A randomly drawn application model.
#[derive(Debug)]
pub struct FuzzWorkload {
    /// The application's sites.
    pub registry: SiteRegistry,
    /// The event trace.
    pub trace: Vec<Event>,
    /// Whether an overflow was injected (and where in Table-III terms).
    pub bug: Option<FuzzBug>,
}

/// Description of the injected bug, for assertions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzBug {
    /// Over-read or over-write.
    pub kind: AccessKind,
    /// How many out-of-bounds words the overflow touches.
    pub extent: u64,
    /// Allocation-site index of the overflowed object.
    pub ctx: usize,
}

impl FuzzWorkload {
    /// Draws a workload. `inject_bug` controls whether one continuous
    /// overflow is placed at a random allocation.
    pub fn generate(seed: u64, inject_bug: bool) -> FuzzWorkload {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF0EE_u64);
        let contexts = rng.gen_range(1..=40usize);
        let allocs = rng.gen_range(contexts as u64..=(contexts as u64) * 30);
        let threads = rng.gen_range(1..=4u8);
        let accesses_per_alloc = rng.gen_range(0..=4u32);
        let free_prob = rng.gen_range(0.0..=0.95f64);

        let mut registry = SiteRegistry::new("fuzzapp", Arc::new(FrameTable::new()));
        for _ in 0..contexts {
            registry.add_alloc_site(rng.gen_range(2..=6));
        }
        let use_site = registry.add_access_site("fuzzapp", "use.c:1");
        let bug_site = registry.add_access_site("fuzzapp", "smash.c:1");

        let mut trace = Vec::new();
        for _ in 1..threads {
            trace.push(Event::SpawnThread);
        }
        let bug_alloc = inject_bug.then(|| rng.gen_range(0..allocs));
        let mut bug = None;
        let mut live: Vec<(usize, u64, u8)> = Vec::new(); // slot, size, thread
        for i in 0..allocs {
            let thread = rng.gen_range(0..threads);
            let slot = i as usize;
            let site = if (i as usize) < contexts {
                i as usize
            } else {
                rng.gen_range(0..contexts)
            };
            let size = rng.gen_range(1..=512u64);
            trace.push(Event::Malloc {
                thread,
                site,
                size,
                slot,
            });
            for _ in 0..accesses_per_alloc {
                let offset = rng.gen_range(0..size);
                let len = rng.gen_range(1..=(size - offset).min(8));
                let kind = if rng.gen_bool(0.5) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                trace.push(Event::Access {
                    thread,
                    slot,
                    offset,
                    len,
                    kind,
                    site: use_site,
                });
            }
            if Some(i) == bug_alloc {
                let kind = if rng.gen_bool(0.5) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                let extent = rng.gen_range(0..=64u64);
                trace.push(Event::OverflowAccess {
                    thread,
                    slot,
                    kind,
                    site: bug_site,
                });
                if extent > 0 {
                    trace.push(Event::OverflowBurst {
                        thread,
                        slot,
                        count: extent,
                        kind,
                        site: bug_site,
                    });
                }
                bug = Some(FuzzBug {
                    kind,
                    extent,
                    ctx: site,
                });
            }
            live.push((slot, size, thread));
            // Random frees of earlier objects.
            if rng.gen_bool(free_prob) && live.len() > 1 {
                let victim = rng.gen_range(0..live.len() - 1);
                let (slot, _, thread) = live.swap_remove(victim);
                trace.push(Event::Free { thread, slot });
            }
        }
        // Random tail frees.
        for (slot, _, thread) in live {
            if rng.gen_bool(0.5) {
                trace.push(Event::Free { thread, slot });
            }
        }
        FuzzWorkload {
            registry,
            trace,
            bug,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{ToolSpec, TraceRunner};
    use asan_sim::AsanConfig;
    use csod_core::CsodConfig;
    use sampler_sim::SamplerConfig;

    #[test]
    fn generation_is_deterministic() {
        let a = FuzzWorkload::generate(9, true);
        let b = FuzzWorkload::generate(9, true);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.bug, b.bug);
    }

    #[test]
    fn clean_workloads_never_alarm_any_tool() {
        for seed in 0..25 {
            let w = FuzzWorkload::generate(seed, false);
            assert!(w.bug.is_none());
            let tools = [
                ToolSpec::Baseline,
                ToolSpec::Csod(CsodConfig::with_seed(seed)),
                ToolSpec::Asan {
                    config: AsanConfig::default(),
                    instrumented: vec!["fuzzapp".into()],
                },
                ToolSpec::Sampler(SamplerConfig {
                    sample_period: 7,
                    ..SamplerConfig::default()
                }),
            ];
            for tool in tools {
                let label = tool.label();
                let outcome = TraceRunner::new(&w.registry, tool).run(w.trace.iter().copied());
                assert!(
                    !outcome.detected,
                    "seed {seed}: {label} false-positived on a clean workload"
                );
            }
        }
    }

    #[test]
    fn asan_always_catches_injected_bugs_in_instrumented_code() {
        let mut bugs_seen = 0;
        for seed in 0..25 {
            let w = FuzzWorkload::generate(seed, true);
            let Some(_) = w.bug else { continue };
            bugs_seen += 1;
            let outcome = TraceRunner::new(
                &w.registry,
                ToolSpec::Asan {
                    config: AsanConfig::default(),
                    instrumented: vec!["fuzzapp".into()],
                },
            )
            .run(w.trace.iter().copied());
            assert!(outcome.detected, "seed {seed}: ASan must catch it");
        }
        assert!(bugs_seen >= 20, "bug injection must usually happen");
    }

    #[test]
    fn csod_catches_every_injected_bug_across_executions() {
        for seed in 0..10 {
            let w = FuzzWorkload::generate(seed, true);
            if w.bug.is_none() {
                continue;
            }
            let detected = (0..64).any(|s| {
                TraceRunner::new(&w.registry, ToolSpec::Csod(CsodConfig::with_seed(s)))
                    .run(w.trace.iter().copied())
                    .watchpoint_detected
            });
            assert!(
                detected,
                "seed {seed}: CSOD must detect within 64 executions"
            );
        }
    }

    #[test]
    fn csod_evidence_catches_every_injected_overwrite_in_one_run() {
        for seed in 0..20 {
            let w = FuzzWorkload::generate(seed, true);
            let Some(bug) = w.bug else { continue };
            if bug.kind != AccessKind::Write {
                continue;
            }
            let outcome = TraceRunner::new(
                &w.registry,
                ToolSpec::Csod(CsodConfig::with_seed(1)),
            )
            .run(w.trace.iter().copied());
            assert!(
                outcome.detected,
                "seed {seed}: over-writes always leave trap or canary evidence"
            );
        }
    }
}
