//! # workloads — application models for the CSOD evaluation
//!
//! Synthetic-but-parameterised applications that reproduce the paper's
//! effectiveness workloads (the nine buggy programs of Tables I-III) and
//! performance workloads (the nineteen programs of Table IV / Figure 7),
//! plus the [`TraceRunner`] that executes them under the baseline, CSOD,
//! or the ASan model.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::perf)]

mod buggy;
mod chaos;
mod driver;
mod fuzz;
mod parallel;
mod perf;
mod scenario;
mod shared;
mod sites;
mod trace;

pub use buggy::{BuggyApp, OverflowKind};
pub use chaos::{run_chaos_soak, ChaosConfig, ChaosOutcome};
pub use driver::{RunOutcome, ToolSpec, TraceRunner};
pub use parallel::{run_chaos_fleet, run_parallel, run_traces_parallel};
pub use fuzz::{FuzzBug, FuzzWorkload};
pub use perf::PerfApp;
pub use scenario::ScenarioBuilder;
pub use shared::SharedHelperApp;
pub use sites::{AccessSite, AllocSite, SiteRegistry};
pub use trace::{Event, TraceThread};
