//! The nineteen performance applications (paper Table IV, Table V,
//! Figure 7): thirteen PARSEC benchmarks plus Aget, Apache, Memcached,
//! MySQL, Pbzip2 and Pfscan.
//!
//! Each model is parameterised by the characteristics Table IV reports
//! (lines of code, allocation contexts, allocation count, thread count)
//! plus a work profile — how memory-access-dense, compute-dense, and
//! I/O-bound the program is — chosen so the *shape* of Figure 7 emerges:
//! CSOD's cost scales with allocations, ASan's with instrumented memory
//! accesses, and I/O time dilutes both.
//!
//! Executed allocation counts are capped (`exec_cap`); normalized
//! overhead is a ratio of per-operation costs, so proportional scaling
//! preserves it while keeping the harness fast. Harness output reports
//! both paper and executed counts.

use crate::driver::{RunOutcome, ToolSpec, TraceRunner};
use crate::sites::SiteRegistry;
use crate::trace::Event;
use csod_ctx::FrameTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_machine::AccessKind;
use std::sync::Arc;

/// One performance-workload model.
#[derive(Debug, Clone)]
pub struct PerfApp {
    /// Application name as Table IV prints it.
    pub name: &'static str,
    /// Lines of code (Table IV).
    pub loc: u64,
    /// Allocation calling contexts (Table IV "CC").
    pub contexts: usize,
    /// Allocations in the paper's run (Table IV "Allocations").
    pub allocations: u64,
    /// Watched times the paper measured (Table IV "WT"), for reference.
    pub paper_watched_times: u64,
    /// Threads used (PARSEC ran with 16).
    pub threads: usize,
    /// Baseline peak resident memory (Table V "Original", KiB).
    pub resident_kb: u64,
    /// Cap on allocations actually executed.
    pub exec_cap: u64,
    /// In-bounds accesses per churn allocation.
    pub accesses_per_alloc: u64,
    /// Non-memory operations per access.
    pub compute_per_access: u64,
    /// Allocation-independent access volume (compute-bound apps).
    pub base_accesses: u64,
    /// Allocation-independent compute volume.
    pub base_compute: u64,
    /// Total modelled I/O wait, in milliseconds.
    pub io_ms: u64,
    /// Fraction of accesses executed in non-instrumented modules
    /// (Pbzip2 spends its time in libbz2).
    pub uninstrumented_access_fraction: f64,
}

impl PerfApp {
    /// All nineteen applications, in Table IV order.
    pub fn all() -> Vec<PerfApp> {
        #[allow(clippy::too_many_arguments)]
        let app = |name,
                   loc,
                   contexts,
                   allocations,
                   paper_watched_times,
                   threads,
                   resident_kb,
                   accesses_per_alloc,
                   compute_per_access,
                   base_accesses,
                   base_compute,
                   io_ms,
                   uninstrumented_access_fraction| PerfApp {
            name,
            loc,
            contexts,
            allocations,
            paper_watched_times,
            threads,
            resident_kb,
            exec_cap: 150_000,
            accesses_per_alloc,
            compute_per_access,
            base_accesses,
            base_compute,
            io_ms,
            uninstrumented_access_fraction,
        };
        vec![
            app("Blackscholes", 479, 4, 4, 4, 16, 613, 0, 0, 10_000_000, 20_000_000, 0, 0.0),
            app("Bodytrack", 11_938, 81, 431_022, 325, 16, 34, 400, 2, 0, 0, 0, 0.0),
            app("Canneal", 4_530, 10, 30_728_172, 79, 16, 940, 80, 0, 0, 0, 0, 0.0),
            app("Dedup", 37_307, 93, 4_074_135, 182, 16, 1_599, 250, 4, 0, 0, 20, 0.0),
            app("Facesim", 45_748, 109, 4_746_070, 369, 16, 2_422, 300, 4, 0, 0, 0, 0.0),
            app("Ferret", 40_997, 118, 139_246, 346, 16, 68, 60, 2, 0, 0, 0, 0.0),
            app("Fluidanimate", 880, 2, 229_910, 5, 16, 408, 800, 2, 0, 0, 0, 0.0),
            app("Freqmine", 2_709, 125, 4_255, 218, 16, 1_241, 50, 2, 50_000_000, 100_000_000, 0, 0.0),
            app("Raytrace", 36_871, 63, 45_037_327, 561, 16, 1_135, 120, 0, 0, 0, 0, 0.0),
            app("Streamcluster", 2_043, 21, 8_861, 30, 16, 111, 100, 2, 20_000_000, 25_000_000, 0, 0.0),
            app("Swaptions", 1_631, 10, 48_001_795, 370, 16, 9, 400, 3, 0, 0, 0, 0.0),
            app("Vips", 206_059, 400, 1_425_257, 259, 16, 59, 600, 4, 0, 0, 0, 0.0),
            app("X264", 33_817, 60, 35_753, 37, 16, 486, 600, 4, 5_000_000, 10_000_000, 0, 0.0),
            app("Aget", 1_205, 14, 46, 16, 4, 7, 20, 2, 1_000_000, 1_000_000, 3_000, 0.0),
            app("Apache", 269_126, 56, 357, 27, 16, 5, 30, 2, 20_000_000, 20_000_000, 30, 0.0),
            app("Memcached", 14_748, 85, 468, 79, 8, 7, 30, 2, 10_000_000, 20_000_000, 50, 0.0),
            app("Mysql", 1_290_401, 1_186, 1_565_311, 1_362, 16, 124, 2_500, 1, 0, 0, 20, 0.0),
            app("Pbzip2", 12_108, 13, 57_746, 58, 8, 128, 200, 2, 0, 0, 0, 0.9),
            app("Pfscan", 1_091, 6, 6, 5, 4, 4_044, 20, 1, 30_000_000, 30_000_000, 2_000, 0.0),
        ]
    }

    /// Looks an application up by case-insensitive name prefix.
    pub fn by_name(name: &str) -> Option<PerfApp> {
        let lower = name.to_ascii_lowercase();
        PerfApp::all()
            .into_iter()
            .find(|a| a.name.to_ascii_lowercase().starts_with(&lower))
    }

    /// Allocations the model actually executes.
    pub fn executed_allocs(&self) -> u64 {
        self.allocations.min(self.exec_cap)
    }

    /// Threads the simulation actually spawns (capped at two; the spec
    /// field keeps the paper's count for reporting).
    pub fn sim_threads(&self) -> usize {
        self.threads.min(2)
    }

    /// Number of long-lived base objects carrying the resident set.
    fn base_objects(&self) -> u64 {
        self.executed_allocs()
            .min((self.contexts as u64).max(4) * 2)
            .clamp(1, 128)
    }

    /// Builds the registry: one allocation site per context, an
    /// instrumented app access site and an uninstrumented library site.
    pub fn registry(&self) -> SiteRegistry {
        let mut reg = SiteRegistry::new(self.name, Arc::new(FrameTable::new()));
        for _ in 0..self.contexts {
            reg.add_alloc_site(4);
        }
        reg.add_access_site(self.name, "kernel/work.c:77"); // token 0
        reg.add_access_site("libextern.so", "lib/inner.c:5"); // token 1
        reg
    }

    /// Modules an ASan build instruments: the application itself.
    pub fn asan_instrumented(&self) -> Vec<String> {
        vec![self.name.to_owned()]
    }

    /// Runs the model under `tool`, generating events on the fly
    /// (deterministic per `seed`).
    pub fn run(&self, registry: &SiteRegistry, tool: ToolSpec, seed: u64) -> RunOutcome {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9E4F);
        let mut runner = TraceRunner::new(registry, tool);
        let app_site = sim_machine::SiteToken(0);
        let lib_site = sim_machine::SiteToken(1);

        // Watchpoints are installed on every alive thread; with the
        // allocation counts capped for tractability, per-install syscall
        // cost at the paper's 16 threads would be over-weighted relative
        // to the scaled-down application time. Two simulated threads keep
        // multi-thread semantics exercised without that distortion (see
        // EXPERIMENTS.md).
        for _ in 1..self.sim_threads() {
            runner.step(&Event::SpawnThread);
        }

        // Long-lived base objects carrying the resident set (Table V).
        // The per-object size is nudged down until the detection tools'
        // per-object overhead (header + canary / redzones, ~48 bytes)
        // fits in the same size class, so Table V measures the tools'
        // overhead rather than a class-boundary artifact.
        let n_base = self.base_objects();
        let mut base_size = ((self.resident_kb * 1024) / n_base).max(64);
        while base_size > 128
            && sim_heap::SizeClass::for_request(base_size + 64).block_size()
                != sim_heap::SizeClass::for_request(base_size).block_size()
        {
            base_size -= 64;
        }
        for i in 0..n_base {
            let site = (i as usize) % self.contexts;
            runner.step(&Event::Malloc {
                thread: (i % self.sim_threads() as u64) as u8,
                site,
                size: base_size,
                slot: i as usize,
            });
        }

        let churn = self.executed_allocs().saturating_sub(n_base);
        let chunks = 100u64;
        let per_chunk_accesses = self.base_accesses / chunks;
        let per_chunk_compute = self.base_compute / chunks;
        let per_chunk_io = self.io_ms * 1_000_000 / chunks;
        let churn_per_chunk = churn / chunks;
        let churn_remainder = churn % chunks;
        let slot0 = n_base as usize; // churn slots live above the base set
        let window = 64usize; // live-window of churn objects

        let mut alloc_no = 0u64;
        for chunk in 0..chunks {
            // Alloc-independent work, spread over the run.
            if per_chunk_accesses > 0 {
                let uninstr =
                    (per_chunk_accesses as f64 * self.uninstrumented_access_fraction) as u64;
                let site = if rng.gen_bool(0.5) { 0 } else { (n_base - 1) as usize };
                runner.step(&Event::AccessBurst {
                    thread: (chunk % self.sim_threads() as u64) as u8,
                    slot: site,
                    count: per_chunk_accesses - uninstr,
                    kind: AccessKind::Read,
                    site: app_site,
                });
                if uninstr > 0 {
                    runner.step(&Event::AccessBurst {
                        thread: (chunk % self.sim_threads() as u64) as u8,
                        slot: site,
                        count: uninstr,
                        kind: AccessKind::Read,
                        site: lib_site,
                    });
                }
            }
            if per_chunk_compute > 0 {
                runner.step(&Event::Compute {
                    thread: 0,
                    ops: per_chunk_compute,
                });
            }
            if per_chunk_io > 0 {
                runner.step(&Event::IoWait { ns: per_chunk_io });
            }

            let churn_this_chunk = churn_per_chunk + u64::from(chunk < churn_remainder);
            for _ in 0..churn_this_chunk {
                let thread = (alloc_no % self.sim_threads() as u64) as u8;
                let slot = slot0 + (alloc_no as usize % window);
                // Reuse of the slot frees the previous occupant first.
                runner.step(&Event::Free { thread, slot });
                // Context choice: introductions first, then skewed reuse.
                let site = if alloc_no < self.contexts as u64 {
                    alloc_no as usize
                } else {
                    // Quadratic skew towards low-index contexts.
                    let r: f64 = rng.gen();
                    ((r * r * self.contexts as f64) as usize).min(self.contexts - 1)
                };
                let size = rng.gen_range(2..=32u64) * 8;
                runner.step(&Event::Malloc {
                    thread,
                    site,
                    size,
                    slot,
                });
                if self.accesses_per_alloc > 0 {
                    let uninstr = (self.accesses_per_alloc as f64
                        * self.uninstrumented_access_fraction)
                        as u64;
                    runner.step(&Event::AccessBurst {
                        thread,
                        slot,
                        count: self.accesses_per_alloc - uninstr,
                        kind: if alloc_no.is_multiple_of(2) {
                            AccessKind::Read
                        } else {
                            AccessKind::Write
                        },
                        site: app_site,
                    });
                    if uninstr > 0 {
                        runner.step(&Event::AccessBurst {
                            thread,
                            slot,
                            count: uninstr,
                            kind: AccessKind::Read,
                            site: lib_site,
                        });
                    }
                }
                if self.accesses_per_alloc * self.compute_per_access > 0 {
                    runner.step(&Event::Compute {
                        thread,
                        ops: self.accesses_per_alloc * self.compute_per_access,
                    });
                }
                alloc_no += 1;
            }
        }
        runner.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asan_sim::AsanConfig;
    use csod_core::CsodConfig;

    #[test]
    fn nineteen_apps_match_table_four() {
        let apps = PerfApp::all();
        assert_eq!(apps.len(), 19);
        let mysql = PerfApp::by_name("mysql").unwrap();
        assert_eq!(mysql.contexts, 1_186);
        assert_eq!(mysql.allocations, 1_565_311);
        let sw = PerfApp::by_name("swaptions").unwrap();
        assert_eq!(sw.allocations, 48_001_795);
        assert_eq!(sw.executed_allocs(), 150_000);
        let bs = PerfApp::by_name("blackscholes").unwrap();
        assert_eq!(bs.executed_allocs(), 4);
    }

    /// A small smoke matrix: baseline has no overhead; CSOD cheaper than
    /// ASan on alloc-light access-heavy apps; detection never fires.
    #[test]
    fn overhead_ordering_on_a_small_app() {
        let mut app = PerfApp::by_name("streamcluster").unwrap();
        app.base_accesses /= 20; // keep the test fast
        app.base_compute /= 20;
        let reg = app.registry();
        let base = app.run(&reg, ToolSpec::Baseline, 1);
        let csod = app.run(&reg, ToolSpec::Csod(CsodConfig::default()), 1);
        let asan = app.run(
            &reg,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
            1,
        );
        assert_eq!(base.overhead, 1.0);
        assert!(!csod.detected && !asan.detected, "no bug in perf runs");
        assert!(csod.overhead > 1.0);
        assert!(asan.overhead > csod.overhead, "access-heavy: ASan costs more");
        // The same application work was modelled in all three runs.
        assert_eq!(base.app_ns, csod.app_ns);
        assert_eq!(base.app_ns, asan.app_ns);
    }

    #[test]
    fn csod_watches_objects_and_counts_contexts() {
        let app = PerfApp::by_name("freqmine").unwrap();
        let reg = app.registry();
        let out = app.run(&reg, ToolSpec::Csod(CsodConfig::default()), 2);
        assert_eq!(out.distinct_contexts, app.contexts.min(out.allocations as usize));
        assert!(out.watched_times >= 4, "at least the four free registers");
        assert_eq!(out.allocations, app.executed_allocs());
    }

    #[test]
    fn io_bound_apps_have_negligible_overhead() {
        let mut app = PerfApp::by_name("aget").unwrap();
        app.base_accesses /= 10;
        app.base_compute /= 10;
        let reg = app.registry();
        let csod = app.run(&reg, ToolSpec::Csod(CsodConfig::default()), 3);
        let asan = app.run(
            &reg,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
            3,
        );
        assert!(csod.overhead < 1.05, "csod {}", csod.overhead);
        assert!(asan.overhead < 1.05, "asan {}", asan.overhead);
    }

    #[test]
    fn uninstrumented_fraction_shrinks_asan_cost() {
        let mut with_lib = PerfApp::by_name("pbzip2").unwrap();
        with_lib.exec_cap = 5_000;
        let mut without_lib = with_lib.clone();
        without_lib.uninstrumented_access_fraction = 0.0;
        let reg = with_lib.registry();
        let spec = |app: &PerfApp| ToolSpec::Asan {
            config: AsanConfig::default(),
            instrumented: app.asan_instrumented(),
        };
        let a = with_lib.run(&reg, spec(&with_lib), 4);
        let b = without_lib.run(&reg, spec(&without_lib), 4);
        assert!(a.overhead < b.overhead);
    }

    #[test]
    fn sim_threads_are_capped_but_spec_is_preserved() {
        let app = PerfApp::by_name("canneal").unwrap();
        assert_eq!(app.threads, 16, "Table IV spec");
        assert_eq!(app.sim_threads(), 2, "simulation cap");
        let aget = PerfApp::by_name("aget").unwrap();
        assert_eq!(aget.sim_threads(), 2);
    }

    #[test]
    fn base_objects_carry_the_resident_set() {
        let app = PerfApp::by_name("blackscholes").unwrap();
        let reg = app.registry();
        let out = app.run(&reg, ToolSpec::Baseline, 1);
        // Table V "Original" for Blackscholes is 613 KiB; the page-
        // rounded model must land within a few percent.
        assert!(
            (580..=680).contains(&out.peak_heap_kb),
            "peak {} KiB",
            out.peak_heap_kb
        );
        assert_eq!(out.allocations, 4, "exactly the Table IV count");
    }

    #[test]
    fn io_time_is_charged_as_io() {
        let mut app = PerfApp::by_name("pfscan").unwrap();
        app.base_accesses = 0;
        app.base_compute = 0;
        let reg = app.registry();
        let out = app.run(&reg, ToolSpec::Baseline, 1);
        assert_eq!(out.io_ns, app.io_ms * 1_000_000);
        assert!(out.io_ns > out.app_ns);
    }

    #[test]
    fn runs_are_deterministic() {
        let mut app = PerfApp::by_name("x264").unwrap();
        app.base_accesses /= 10;
        app.base_compute /= 10;
        let reg = app.registry();
        let a = app.run(&reg, ToolSpec::Csod(CsodConfig::default()), 7);
        let b = app.run(&reg, ToolSpec::Csod(CsodConfig::default()), 7);
        assert_eq!(a.overhead, b.overhead);
        assert_eq!(a.watched_times, b.watched_times);
        assert_eq!(a.total_ns, b.total_ns);
    }
}
