//! Parallel scenario driver: fans independent scenarios across OS
//! threads.
//!
//! Every simulated execution in this workspace is self-contained — one
//! [`sim_machine::Machine`], one heap, one runtime — so a batch of
//! scenarios is embarrassingly parallel as long as each job builds its
//! own world. The driver here does exactly that: workers pull scenario
//! indices from a shared atomic counter (so slow scenarios don't stall a
//! pre-partitioned stripe) and run each one to completion on its own OS
//! thread. Results come back in input order, and per-scenario
//! determinism is untouched: a scenario's outcome depends only on its
//! own config and seed, never on scheduling.

use crate::chaos::{run_chaos_soak, ChaosConfig, ChaosOutcome};
use crate::driver::{RunOutcome, ToolSpec, TraceRunner};
use crate::sites::SiteRegistry;
use crate::trace::Event;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Runs `job` over every input, fanned across at most `threads` OS
/// threads, and returns the outputs in input order.
///
/// Workers claim inputs through a shared counter, so an uneven mix of
/// cheap and expensive scenarios still keeps every thread busy. A
/// panicking job propagates the panic to the caller.
pub fn run_parallel<I, O, F>(inputs: &[I], threads: usize, job: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    if inputs.is_empty() {
        return Vec::new();
    }
    let workers = threads.clamp(1, inputs.len());
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, O)> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(input) = inputs.get(i) else { break };
                        out.push((i, job(input)));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("scenario job panicked"))
            .collect()
    });
    collected.sort_by_key(|&(i, _)| i);
    collected.into_iter().map(|(_, o)| o).collect()
}

/// Runs one chaos soak per config, in parallel. Each soak owns its own
/// machine, heap and runtime, so the fleet's outcomes are bit-identical
/// to running the same configs serially.
pub fn run_chaos_fleet(configs: &[ChaosConfig], threads: usize) -> Vec<ChaosOutcome> {
    run_parallel(configs, threads, run_chaos_soak)
}

/// Runs one [`TraceRunner`] execution per trace against a shared site
/// registry, in parallel — the scaling path for the benchmark and
/// effectiveness suites.
pub fn run_traces_parallel(
    registry: &SiteRegistry,
    tool: &ToolSpec,
    traces: &[Vec<Event>],
    threads: usize,
) -> Vec<RunOutcome> {
    run_parallel(traces, threads, |trace| {
        TraceRunner::new(registry, tool.clone()).run(trace.iter().cloned())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csod_core::CsodConfig;
    use csod_ctx::FrameTable;
    use sim_machine::AccessKind;
    use sim_machine::SiteToken;
    use std::sync::Arc;

    #[test]
    fn results_come_back_in_input_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let squares = run_parallel(&inputs, 8, |&n| n * n);
        assert_eq!(squares.len(), 100);
        for (i, sq) in squares.iter().enumerate() {
            assert_eq!(*sq, (i as u64) * (i as u64));
        }
        // Degenerate shapes: more threads than inputs, and one thread.
        assert_eq!(run_parallel(&inputs[..3], 64, |&n| n + 1), vec![1, 2, 3]);
        assert_eq!(run_parallel(&inputs[..3], 1, |&n| n + 1), vec![1, 2, 3]);
        assert!(run_parallel::<u64, u64, _>(&[], 4, |&n| n).is_empty());
    }

    fn small_soak(seed: u64) -> ChaosConfig {
        ChaosConfig {
            seed,
            allocations: 2_000,
            sites: 8,
            ring: 16,
            thread_churn: 1,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn fleet_member_matches_serial_soak_exactly() {
        let configs: Vec<ChaosConfig> = (0..4).map(|i| small_soak(0xFEE7 + i)).collect();
        let fleet = run_chaos_fleet(&configs, 4);
        assert_eq!(fleet.len(), configs.len());
        for (cfg, parallel) in configs.iter().zip(&fleet) {
            let serial = run_chaos_soak(cfg);
            assert_eq!(
                serial.summary, parallel.summary,
                "a soak's outcome must not depend on scheduling"
            );
            assert_eq!(serial.detected, parallel.detected);
            assert!(parallel.leak_free());
        }
    }

    #[test]
    fn parallel_traces_detect_like_serial_ones() {
        let mut reg = SiteRegistry::new("par", Arc::new(FrameTable::new()));
        reg.add_alloc_sites(4);
        let bug = reg.add_access_site("par", "bug.c:1");
        let traces: Vec<Vec<Event>> = (0..6)
            .map(|i| {
                let mut t = vec![Event::malloc(0, 64, 0)];
                if i % 2 == 0 {
                    t.push(Event::overflow(0, AccessKind::Write, bug));
                } else {
                    t.push(Event::access(0, 0, 8, AccessKind::Write, SiteToken(0)));
                }
                t.push(Event::free(0));
                t
            })
            .collect();
        let tool = ToolSpec::Csod(CsodConfig::default());
        let outcomes = run_traces_parallel(&reg, &tool, &traces, 3);
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.detected, i % 2 == 0, "trace {i}");
        }
    }
}
