//! The nine buggy applications of the effectiveness evaluation
//! (paper Tables I, II and III).
//!
//! Each model is parameterised by the characteristics the paper measured
//! (Table III): the total number of allocation calling contexts and
//! allocations, and how many of each occurred *before the overflow*.
//! Together with three structural switches — whether the first four
//! objects stay alive (that is what starves the naive policy), whether a
//! watched early object is freed right before the bug allocation (what
//! lets the naive policy catch Libdwarf), and how often the bug's own
//! context allocated before the overflow (what drives its degraded
//! probability) — these statistics are exactly what determines CSOD's
//! per-execution detection probability.

use crate::sites::SiteRegistry;
use crate::trace::Event;
use csod_ctx::FrameTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_machine::AccessKind;
use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

/// Bug class of a modelled application (Table I "Vulnerability").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverflowKind {
    /// Reads beyond the object (e.g. Heartbleed).
    OverRead,
    /// Writes beyond the object.
    OverWrite,
}

impl OverflowKind {
    /// The machine-level access kind of the overflowing statement.
    pub fn access_kind(self) -> AccessKind {
        match self {
            OverflowKind::OverRead => AccessKind::Read,
            OverflowKind::OverWrite => AccessKind::Write,
        }
    }
}

impl fmt::Display for OverflowKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverflowKind::OverRead => f.write_str("Over-read"),
            OverflowKind::OverWrite => f.write_str("Over-write"),
        }
    }
}

/// One buggy application model.
#[derive(Debug, Clone)]
pub struct BuggyApp {
    /// Application name as the paper prints it.
    pub name: &'static str,
    /// Bug class (Table I).
    pub vulnerability: OverflowKind,
    /// Bug reference (Table I).
    pub reference: &'static str,
    /// Total allocation calling contexts (Table III).
    pub total_contexts: usize,
    /// Total allocations (Table III).
    pub total_allocs: u64,
    /// Calling contexts observed before the overflow (Table III).
    pub contexts_before: usize,
    /// Allocations before the overflow (Table III).
    pub allocs_before: u64,
    /// Module containing the overflowing statement.
    pub bug_module: &'static str,
    /// The application's own module (instrumented under ASan).
    pub app_module: &'static str,
    /// Whether an ASan build would instrument `bug_module` — false for
    /// the three in-library bugs (Libtiff, LibHX, Zziplib).
    pub asan_instruments_bug_module: bool,
    /// Allocations from the bug's context before the bug allocation;
    /// each one risks a watch (and a probability halving).
    pub bug_ctx_prior_allocs: u64,
    /// First four objects stay alive to the end — with no free, the
    /// naive policy's four watchpoints are never released.
    pub long_lived_prefix: bool,
    /// Free one (still-watched-under-naive) early object right before
    /// the bug allocation, handing the naive policy a free register.
    pub free_early_before_bug: bool,
    /// In-bounds accesses generated per allocation.
    pub accesses_per_alloc: u32,
    /// How many further out-of-bounds words the continuous overflow
    /// touches after the first (Heartbleed copies up to 64 KB). The
    /// first word is what watchpoints and redzones catch; the extent is
    /// what access-sampling detectors rely on.
    pub overflow_extent: u64,
    /// Threads the application runs (the servers are multi-threaded;
    /// watchpoints must cover them all and the overflow may occur on a
    /// worker, not the thread that allocated the object).
    pub threads: usize,
}

impl BuggyApp {
    /// All nine applications, in Table I order.
    pub fn all() -> Vec<BuggyApp> {
        vec![
            BuggyApp {
                name: "Gzip-1.2.4",
                vulnerability: OverflowKind::OverWrite,
                reference: "BugBench",
                total_contexts: 1,
                total_allocs: 1,
                contexts_before: 1,
                allocs_before: 1,
                bug_module: "gzip",
                app_module: "gzip",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 0,
                long_lived_prefix: false,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 127,
                threads: 1,
            },
            BuggyApp {
                name: "Heartbleed",
                vulnerability: OverflowKind::OverRead,
                reference: "CVE-2014-0160",
                total_contexts: 307,
                total_allocs: 5_403,
                contexts_before: 273,
                allocs_before: 5_392,
                bug_module: "openssl",
                app_module: "nginx",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 1,
                long_lived_prefix: true,
                free_early_before_bug: false,
                accesses_per_alloc: 1,
                overflow_extent: 8191,
                threads: 4,
            },
            BuggyApp {
                name: "Libdwarf-20161021",
                vulnerability: OverflowKind::OverRead,
                reference: "CVE-2016-9276",
                total_contexts: 26,
                total_allocs: 152,
                contexts_before: 24,
                allocs_before: 147,
                bug_module: "libdwarf",
                app_module: "libdwarf",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 0,
                long_lived_prefix: true,
                free_early_before_bug: true,
                accesses_per_alloc: 2,
                overflow_extent: 255,
                threads: 1,
            },
            BuggyApp {
                name: "LibHX-3.4",
                vulnerability: OverflowKind::OverWrite,
                reference: "CVE-2010-2947",
                total_contexts: 4,
                total_allocs: 5,
                contexts_before: 1,
                allocs_before: 1,
                bug_module: "libHX.so",
                app_module: "hxtest",
                asan_instruments_bug_module: false,
                bug_ctx_prior_allocs: 0,
                long_lived_prefix: false,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 15,
                threads: 1,
            },
            BuggyApp {
                name: "Libtiff-4.01",
                vulnerability: OverflowKind::OverWrite,
                reference: "CVE-2013-4243",
                total_contexts: 1,
                total_allocs: 1,
                contexts_before: 1,
                allocs_before: 1,
                bug_module: "libtiff.so",
                app_module: "gif2tiff",
                asan_instruments_bug_module: false,
                bug_ctx_prior_allocs: 0,
                long_lived_prefix: false,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 255,
                threads: 1,
            },
            BuggyApp {
                name: "Memcached-1.4.25",
                vulnerability: OverflowKind::OverWrite,
                reference: "CVE-2016-8706",
                total_contexts: 74,
                total_allocs: 442,
                contexts_before: 74,
                allocs_before: 442,
                bug_module: "memcached",
                app_module: "memcached",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 4,
                long_lived_prefix: true,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 63,
                threads: 4,
            },
            BuggyApp {
                name: "MySQL-5.5.19",
                vulnerability: OverflowKind::OverWrite,
                reference: "CVE-2012-5612",
                total_contexts: 488,
                total_allocs: 57_464,
                contexts_before: 445,
                allocs_before: 57_356,
                bug_module: "mysqld",
                app_module: "mysqld",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 4,
                long_lived_prefix: true,
                free_early_before_bug: false,
                accesses_per_alloc: 1,
                overflow_extent: 63,
                threads: 4,
            },
            BuggyApp {
                name: "Polymorph-0.4.0",
                vulnerability: OverflowKind::OverWrite,
                reference: "BugBench",
                total_contexts: 1,
                total_allocs: 1,
                contexts_before: 1,
                allocs_before: 1,
                bug_module: "polymorph",
                app_module: "polymorph",
                asan_instruments_bug_module: true,
                bug_ctx_prior_allocs: 0,
                long_lived_prefix: false,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 127,
                threads: 1,
            },
            BuggyApp {
                name: "Zziplib-0.13.62",
                vulnerability: OverflowKind::OverRead,
                reference: "CVE-2017-5974",
                total_contexts: 13,
                total_allocs: 17,
                contexts_before: 13,
                allocs_before: 17,
                bug_module: "libzzip.so",
                app_module: "unzzip",
                asan_instruments_bug_module: false,
                bug_ctx_prior_allocs: 4,
                long_lived_prefix: true,
                free_early_before_bug: false,
                accesses_per_alloc: 2,
                overflow_extent: 31,
                threads: 1,
            },
        ]
    }

    /// Looks an application up by (case-insensitive prefix of) name.
    pub fn by_name(name: &str) -> Option<BuggyApp> {
        let lower = name.to_ascii_lowercase();
        BuggyApp::all()
            .into_iter()
            .find(|a| a.name.to_ascii_lowercase().starts_with(&lower))
    }

    /// The 0-based index of the bug's allocation context.
    pub fn bug_ctx(&self) -> usize {
        self.contexts_before - 1
    }

    /// Builds the application's site registry: one allocation site per
    /// context, an in-bounds access site in the app module, and the
    /// overflowing site in `bug_module`.
    pub fn registry(&self) -> SiteRegistry {
        let mut reg = SiteRegistry::new(self.app_module, Arc::new(FrameTable::new()));
        for _ in 0..self.total_contexts {
            reg.add_alloc_site(4);
        }
        // Token 0: ordinary accesses; token 1: the overflowing statement.
        reg.add_access_site(self.app_module, "logic/use.c:210");
        reg.add_access_site(self.bug_module, "overflow/copy.c:81");
        reg
    }

    /// Modules an ASan build of this application would instrument.
    pub fn asan_instrumented(&self) -> Vec<String> {
        let mut modules = vec![self.app_module.to_owned()];
        if self.asan_instruments_bug_module && self.bug_module != self.app_module {
            modules.push(self.bug_module.to_owned());
        }
        modules
    }

    /// Generates the execution trace (deterministic per `gen_seed`).
    ///
    /// The trace realizes the Table III statistics: `allocs_before`
    /// allocations from `contexts_before` contexts, then THE overflow,
    /// then the rest. The overflowed object is the last pre-overflow
    /// allocation; its context first appears `bug_ctx_prior_allocs`
    /// allocations earlier.
    pub fn trace(&self, gen_seed: u64) -> Vec<Event> {
        let mut rng = StdRng::seed_from_u64(gen_seed ^ 0xB0661E5);
        let mut events = Vec::new();
        let threads = self.threads.clamp(1, 8) as u64;
        for _ in 1..threads {
            events.push(Event::SpawnThread);
        }
        let bug_ctx = self.bug_ctx();
        let n_pre = self.allocs_before;
        let prior = self
            .bug_ctx_prior_allocs
            .min(n_pre.saturating_sub(self.contexts_before as u64));

        // --- Plan the pre-overflow context sequence -----------------------
        // 1 mandatory allocation per non-bug context (introduction order),
        // `prior` allocations from the bug context spread over the middle,
        // the rest drawn from already-introduced contexts, and finally the
        // bug allocation itself.
        let non_bug: Vec<usize> = (0..self.contexts_before).filter(|&c| c != bug_ctx).collect();
        let mut sequence: Vec<usize> = Vec::with_capacity(n_pre as usize);
        sequence.extend(non_bug.iter().copied());
        let filler = n_pre.saturating_sub(1 + prior + non_bug.len() as u64);
        for _ in 0..filler {
            // Weighted towards earlier contexts (long-lived arenas etc.).
            let pick = non_bug[rng.gen_range(0..non_bug.len().max(1)).min(non_bug.len() - 1)];
            sequence.push(pick);
        }
        // Keep introductions early but shuffle the tail for realism.
        if sequence.len() > non_bug.len() {
            let tail_start = non_bug.len().min(sequence.len());
            let (head, tail) = sequence.split_at_mut(tail_start);
            let _ = head;
            // Fisher-Yates on the tail.
            for i in (1..tail.len()).rev() {
                tail.swap(i, rng.gen_range(0..=i));
            }
        }
        // Insert the bug context's prior allocations in the second half.
        for _ in 0..prior {
            let lo = sequence.len() / 2;
            let pos = rng.gen_range(lo..=sequence.len());
            sequence.insert(pos, bug_ctx);
        }
        debug_assert_eq!(sequence.len() as u64, n_pre.saturating_sub(1));

        // --- Emit events ---------------------------------------------------
        let mut next_slot = 0usize;
        // (free_after_alloc_index, slot) queue for short-lived objects.
        let mut pending_frees: VecDeque<(u64, usize)> = VecDeque::new();
        let mut emitted_allocs = 0u64;
        let use_site = sim_machine::SiteToken(0);
        let bug_site = sim_machine::SiteToken(1);
        let mut prefix_slots: Vec<usize> = Vec::new();

        let emit_alloc = |events: &mut Vec<Event>,
                              rng: &mut StdRng,
                              pending: &mut VecDeque<(u64, usize)>,
                              prefix_slots: &mut Vec<usize>,
                              emitted: &mut u64,
                              next_slot: &mut usize,
                              ctx: usize,
                              long_lived_prefix: bool,
                              accesses: u32| {
            // Release objects whose lifetime ended.
            while pending.front().is_some_and(|&(due, _)| due <= *emitted) {
                let (_, slot) = pending.pop_front().expect("front exists");
                events.push(Event::free(slot));
            }
            let slot = *next_slot;
            *next_slot += 1;
            let thread = (*emitted % threads) as u8;
            let size = rng.gen_range(2..=32u64) * 8;
            events.push(Event::Malloc {
                thread,
                site: ctx,
                size,
                slot,
            });
            for _ in 0..accesses {
                let offset = rng.gen_range(0..size / 8) * 8;
                let kind = if rng.gen_bool(0.5) {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                };
                events.push(Event::Access {
                    thread,
                    slot,
                    offset,
                    len: 8,
                    kind,
                    site: use_site,
                });
            }
            *emitted += 1;
            if *emitted <= 4 {
                prefix_slots.push(slot);
                if !long_lived_prefix {
                    // Prefix objects die mid-run when nothing pins them.
                    let lifetime = rng.gen_range(2..20u64);
                    pending.push_back((*emitted + lifetime, slot));
                }
            } else if rng.gen_bool(0.8) {
                let lifetime = rng.gen_range(2..40u64);
                pending.push_back((*emitted + lifetime, slot));
            }
            slot
        };

        for &ctx in &sequence {
            emit_alloc(
                &mut events,
                &mut rng,
                &mut pending_frees,
                &mut prefix_slots,
                &mut emitted_allocs,
                &mut next_slot,
                ctx,
                self.long_lived_prefix,
                self.accesses_per_alloc,
            );
        }

        // Libdwarf's shape: an early object — still watched under the
        // naive policy — is freed right before the buggy allocation.
        if self.free_early_before_bug {
            if let Some(&slot) = prefix_slots.first() {
                events.push(Event::free(slot));
            }
        }

        // THE bug allocation and, shortly after, the overflow.
        let bug_slot = emit_alloc(
            &mut events,
            &mut rng,
            &mut pending_frees,
            &mut prefix_slots,
            &mut emitted_allocs,
            &mut next_slot,
            bug_ctx,
            self.long_lived_prefix,
            self.accesses_per_alloc,
        );
        let overflow_thread = (threads - 1) as u8;
        events.push(Event::OverflowAccess {
            thread: overflow_thread,
            slot: bug_slot,
            kind: self.vulnerability.access_kind(),
            site: bug_site,
        });
        if self.overflow_extent > 0 {
            // The rest of the continuous overflow (memcpy past the first
            // word) — what gives access-sampling baselines their shot.
            events.push(Event::OverflowBurst {
                thread: overflow_thread,
                slot: bug_slot,
                count: self.overflow_extent,
                kind: self.vulnerability.access_kind(),
                site: bug_site,
            });
        }

        // --- Post-overflow tail --------------------------------------------
        let allocs_after = self.total_allocs - self.allocs_before;
        let contexts_after = (self.total_contexts - self.contexts_before).min(allocs_after as usize);
        for i in 0..allocs_after {
            let ctx = if (i as usize) < contexts_after {
                self.contexts_before + i as usize
            } else if self.contexts_before > 1 {
                rng.gen_range(0..self.contexts_before - 1)
            } else {
                0
            };
            emit_alloc(
                &mut events,
                &mut rng,
                &mut pending_frees,
                &mut prefix_slots,
                &mut emitted_allocs,
                &mut next_slot,
                ctx,
                self.long_lived_prefix,
                self.accesses_per_alloc,
            );
        }
        // Drain remaining scheduled frees.
        for (_, slot) in pending_frees {
            events.push(Event::free(slot));
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::{ToolSpec, TraceRunner};
    use csod_core::{CsodConfig, ReplacementPolicy};

    #[test]
    fn all_nine_apps_match_table_one() {
        let apps = BuggyApp::all();
        assert_eq!(apps.len(), 9);
        let reads: Vec<&str> = apps
            .iter()
            .filter(|a| a.vulnerability == OverflowKind::OverRead)
            .map(|a| a.name)
            .collect();
        assert_eq!(reads, vec!["Heartbleed", "Libdwarf-20161021", "Zziplib-0.13.62"]);
        // The three in-library bugs ASan misses.
        let missed: Vec<&str> = apps
            .iter()
            .filter(|a| !a.asan_instruments_bug_module)
            .map(|a| a.name)
            .collect();
        assert_eq!(missed, vec!["LibHX-3.4", "Libtiff-4.01", "Zziplib-0.13.62"]);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(BuggyApp::by_name("mysql").unwrap().name, "MySQL-5.5.19");
        assert_eq!(BuggyApp::by_name("Gzip").unwrap().name, "Gzip-1.2.4");
        assert!(BuggyApp::by_name("nonesuch").is_none());
    }

    /// The trace must realize the Table III statistics exactly.
    #[test]
    fn traces_match_table_three_statistics() {
        for app in BuggyApp::all() {
            let trace = app.trace(7);
            let mut allocs_before = 0u64;
            let mut ctx_seen = std::collections::HashSet::new();
            let mut total_allocs = 0u64;
            let mut ctx_before = 0usize;
            let mut seen_overflow = false;
            for e in &trace {
                match e {
                    Event::Malloc { site, .. } => {
                        total_allocs += 1;
                        ctx_seen.insert(*site);
                        if !seen_overflow {
                            allocs_before += 1;
                            ctx_before = ctx_seen.len();
                        }
                    }
                    Event::OverflowAccess { .. } => seen_overflow = true,
                    _ => {}
                }
            }
            assert!(seen_overflow, "{}: trace contains the bug", app.name);
            assert_eq!(total_allocs, app.total_allocs, "{}: total allocs", app.name);
            assert_eq!(allocs_before, app.allocs_before, "{}: allocs before", app.name);
            assert_eq!(ctx_before, app.contexts_before, "{}: contexts before", app.name);
            assert!(
                ctx_seen.len() <= app.total_contexts,
                "{}: at most the declared contexts",
                app.name
            );
        }
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let app = BuggyApp::by_name("memcached").unwrap();
        assert_eq!(app.trace(3), app.trace(3));
        assert_ne!(app.trace(3), app.trace(4));
    }

    #[test]
    fn tiny_apps_are_always_detected_by_every_policy() {
        for name in ["gzip", "libtiff", "polymorph"] {
            let app = BuggyApp::by_name(name).unwrap();
            let reg = app.registry();
            let trace = app.trace(1);
            for policy in ReplacementPolicy::ALL {
                let mut config = CsodConfig::with_policy(policy);
                config.seed = 99;
                let outcome = TraceRunner::new(&reg, ToolSpec::Csod(config))
                    .run(trace.iter().copied());
                assert!(
                    outcome.watchpoint_detected,
                    "{name} under {policy} must detect"
                );
            }
        }
    }

    #[test]
    fn naive_policy_misses_the_late_bug_apps() {
        for name in ["memcached", "zziplib"] {
            let app = BuggyApp::by_name(name).unwrap();
            let reg = app.registry();
            let trace = app.trace(1);
            let mut detections = 0;
            for seed in 0..20 {
                let mut config = CsodConfig::with_policy(ReplacementPolicy::Naive);
                config.seed = seed;
                let outcome =
                    TraceRunner::new(&reg, ToolSpec::Csod(config)).run(trace.iter().copied());
                if outcome.watchpoint_detected {
                    detections += 1;
                }
            }
            assert_eq!(detections, 0, "{name}: naive policy must never detect");
        }
    }

    #[test]
    fn libdwarf_naive_always_detects() {
        let app = BuggyApp::by_name("libdwarf").unwrap();
        let reg = app.registry();
        let trace = app.trace(1);
        for seed in 0..20 {
            let mut config = CsodConfig::with_policy(ReplacementPolicy::Naive);
            config.seed = seed;
            let outcome =
                TraceRunner::new(&reg, ToolSpec::Csod(config)).run(trace.iter().copied());
            assert!(outcome.watchpoint_detected, "libdwarf naive seed {seed}");
        }
    }

    #[test]
    fn asan_misses_library_bugs_but_catches_app_bugs() {
        use asan_sim::AsanConfig;
        for app in BuggyApp::all() {
            let reg = app.registry();
            let trace = app.trace(1);
            let outcome = TraceRunner::new(
                &reg,
                ToolSpec::Asan {
                    config: AsanConfig::default(),
                    instrumented: app.asan_instrumented(),
                },
            )
            .run(trace.iter().copied());
            assert_eq!(
                outcome.detected, app.asan_instruments_bug_module,
                "{}: ASan detection mismatch",
                app.name
            );
        }
    }
}
