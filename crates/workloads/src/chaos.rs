//! Chaos soak: allocation churn under an injected-fault storm.
//!
//! A robustness workload rather than a paper-evaluation one: it drives a
//! [`Csod`] runtime through heavy allocation churn while the machine's
//! [`FaultPlan`] makes perf syscalls fail, drops and delays SIGTRAPs,
//! rejects allocations, and (optionally) marks the debug registers busy
//! for a window — the situations a production always-on detector must
//! absorb without panicking or leaking a descriptor. Planted overflows
//! verify detection keeps working (through canary evidence when the
//! watchpoint path is down).

use csod_core::{Csod, CsodConfig, RunSummary};
use csod_ctx::{CallingContext, ContextKey, FrameTable};
use csod_rng::Arc4Random;
use sim_heap::{HeapConfig, SimHeap};
use sim_machine::{
    FaultPlan, FaultStats, Machine, SiteToken, ThreadId, VirtAddr, VirtDuration, VirtInstant,
};
use std::sync::Arc;

/// Parameters of one chaos soak.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Seed for both the fault plan and the workload's own churn.
    pub seed: u64,
    /// Allocations to perform.
    pub allocations: u64,
    /// Failure probability of each perf syscall (open/fcntl/ioctl/close),
    /// in parts per million.
    pub perf_failure_ppm: u32,
    /// Probability that a fired SIGTRAP is silently dropped, in ppm.
    pub signal_drop_ppm: u32,
    /// Probability that a fired SIGTRAP is delayed, in ppm.
    pub signal_delay_ppm: u32,
    /// Probability that a heap allocation fails, in ppm.
    pub alloc_failure_ppm: u32,
    /// Virtual window during which every `perf_event_open` fails with
    /// `EBUSY` (a co-resident debugger holding the registers). `None`
    /// injects no window.
    pub busy_window: Option<(VirtDuration, VirtDuration)>,
    /// Overflows planted by corrupting canaries behind the tool's back
    /// (caught by evidence at free), per soak.
    pub planted_overflows: u64,
    /// Distinct allocation contexts the churn draws from.
    pub sites: usize,
    /// Live-object ring size (peak concurrent allocations).
    pub ring: usize,
    /// Worker threads churned (spawned and exited) during the run.
    pub thread_churn: usize,
    /// CSOD configuration for the run.
    pub csod: CsodConfig,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            allocations: 100_000,
            perf_failure_ppm: 300_000, // the acceptance scenario's 30 %
            signal_drop_ppm: 100_000,
            signal_delay_ppm: 50_000,
            alloc_failure_ppm: 1_000,
            busy_window: None,
            planted_overflows: 8,
            sites: 32,
            ring: 64,
            thread_churn: 2,
            csod: CsodConfig::default(),
        }
    }
}

/// What one chaos soak observed. The leak checks (`open_events`,
/// `free_registers`) are read *after* [`Csod::finish`], so any non-clean
/// value is a real leak, not a live watchpoint.
#[derive(Debug, Clone)]
pub struct ChaosOutcome {
    /// The runtime's end-of-run summary (degradation counters included).
    pub summary: RunSummary,
    /// Perf events still open at exit — must be 0.
    pub open_events: usize,
    /// Debug registers free on the main thread at exit — must be all of
    /// them.
    pub free_registers: usize,
    /// Total debug registers the machine has.
    pub total_registers: usize,
    /// What the fault plan actually injected.
    pub faults: FaultStats,
    /// Overflows planted via silent canary corruption.
    pub planted: u64,
    /// Allocations the injected allocator faults rejected.
    pub failed_allocs: u64,
    /// Whether any overflow was detected by any mechanism.
    pub detected: bool,
}

impl ChaosOutcome {
    /// The no-leak invariant: every descriptor closed, every register
    /// returned.
    pub fn leak_free(&self) -> bool {
        self.open_events == 0 && self.free_registers == self.total_registers
    }
}

/// Runs one chaos soak. Panics only on genuine invariant violations
/// (e.g. `free` of a live pointer failing) — injected faults are
/// absorbed, which is the point of the exercise.
pub fn run_chaos_soak(cfg: &ChaosConfig) -> ChaosOutcome {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut plan = FaultPlan::new(cfg.seed)
        .perf_failures_ppm(cfg.perf_failure_ppm)
        .signal_drops_ppm(cfg.signal_drop_ppm)
        .signal_delays_ppm(cfg.signal_delay_ppm, VirtDuration::from_micros(200))
        .alloc_failures_ppm(cfg.alloc_failure_ppm);
    if let Some((from, until)) = cfg.busy_window {
        plan = plan.registers_busy_between(VirtInstant::BOOT + from, VirtInstant::BOOT + until);
    }
    machine.install_fault_plan(plan);
    let mut heap =
        SimHeap::new(&mut machine, HeapConfig::default()).expect("fresh machine has a heap region");
    let mut csod = Csod::new(cfg.csod.clone(), Arc::clone(&frames));

    let contexts: Vec<(ContextKey, CallingContext)> = (0..cfg.sites.max(1))
        .map(|i| {
            let loc = format!("chaos.c:{}", 10 + i);
            let ctx = CallingContext::from_locations(&frames, [loc.as_str(), "main.c:1"]);
            (ContextKey::new(frames.intern(&loc), 0x40), ctx)
        })
        .collect();
    let smash = SiteToken(0xC4A05);
    csod.register_site(
        smash,
        CallingContext::from_locations(&frames, ["smash.c:1", "main.c:1"]),
    );

    let mut rng = Arc4Random::from_seed(cfg.seed ^ 0x50A_C4A0, 7);
    let mut ring: Vec<Option<(VirtAddr, u64)>> = vec![None; cfg.ring.max(1)];
    let mut workers: Vec<ThreadId> = Vec::new();
    let mut planted = 0u64;
    let mut failed_allocs = 0u64;
    let plant_every = cfg
        .allocations
        .checked_div(cfg.planted_overflows)
        .map_or(u64::MAX, |n| n.max(1));

    for i in 0..cfg.allocations {
        let slot = rng.next_u64() as usize % ring.len();
        if let Some((addr, _)) = ring[slot].take() {
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, addr)
                .expect("freeing a live soak object");
        }
        let (key, ctx) = &contexts[rng.next_u64() as usize % contexts.len()];
        let size = 16 + u64::from(rng.uniform(8)) * 8;
        let tid = match workers.len() {
            0 => ThreadId::MAIN,
            n => match rng.uniform(n as u32 + 1) {
                0 => ThreadId::MAIN,
                k => workers[(k - 1) as usize],
            },
        };
        match csod.malloc(&mut machine, &mut heap, tid, size, *key, ctx) {
            Ok(p) => {
                ring[slot] = Some((p, size));
                let boundary = p + size.div_ceil(8) * 8;
                if planted < cfg.planted_overflows && i % plant_every == plant_every - 1 {
                    // Silent canary corruption: invisible to watchpoints
                    // (the raw store bypasses them), caught by evidence.
                    machine
                        .raw_store_u64(boundary, 0xDEAD_BEEF)
                        .expect("boundary word is mapped");
                    planted += 1;
                } else if csod.is_watched(p) || rng.chance_ppm(20_000) {
                    // Visible overflow through the access path: fires the
                    // watchpoint when the object is watched (and the
                    // SIGTRAP is not dropped).
                    machine.set_current_site(tid, smash);
                    let _ = machine.app_write(tid, boundary, 8);
                }
            }
            Err(_) => failed_allocs += 1,
        }

        if i % 64 == 63 {
            // Let virtual time pass so retries, probes and quarantine
            // periods actually elapse during the soak, then poll.
            machine.skip_time(VirtDuration::from_millis(1));
            csod.poll(&mut machine);
        }
        if cfg.thread_churn > 0 && i % 10_000 == 9_999 {
            if workers.len() < cfg.thread_churn {
                workers.push(csod.spawn_thread(&mut machine));
            } else if let Some(w) = workers.pop() {
                csod.exit_thread(&mut machine, w).expect("worker is alive");
            }
        }
    }

    for slot in &mut ring {
        if let Some((addr, _)) = slot.take() {
            csod.free(&mut machine, &mut heap, ThreadId::MAIN, addr)
                .expect("freeing a live soak object");
        }
    }
    for w in workers.drain(..) {
        csod.exit_thread(&mut machine, w).expect("worker is alive");
    }
    csod.poll(&mut machine);
    csod.finish(&mut machine);

    ChaosOutcome {
        summary: RunSummary::collect(&csod, &machine),
        open_events: machine.open_events(),
        free_registers: machine.free_registers(ThreadId::MAIN),
        total_registers: sim_machine::NUM_WATCHPOINT_REGISTERS,
        faults: machine.fault_stats().unwrap_or_default(),
        planted,
        failed_allocs,
        detected: csod.detected(),
    }
}
