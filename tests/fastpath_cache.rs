//! The per-thread decision cache must be invisible to detection: every
//! probability-changing event flushes it, and running the buggy workload
//! suite through the cached fast path finds the same overflows as the
//! uncached sampler (`decision_cache_refresh = 1`, the pre-cache
//! behaviour kept as a comparison mode).

use csod::core::{
    AnalysisPriors, CsodConfig, DecisionCache, RiskClass, SamplingParams, SamplingUnit,
};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::machine::{VirtDuration, VirtInstant};
use csod::rng::{Arc4Random, PPM_SCALE};
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn fixture(frames: &FrameTable, name: &str) -> (ContextKey, CallingContext) {
    let ctx = CallingContext::from_locations(frames, [name, "main.c:1"]);
    (ContextKey::new(ctx.first_level().expect("non-empty"), 0x40), ctx)
}

fn prob(unit: &SamplingUnit, key: ContextKey) -> u32 {
    unit.state(key).expect("context seen").probability_ppm()
}

#[test]
fn watch_install_invalidates_the_cache() {
    let frames = FrameTable::new();
    let unit = SamplingUnit::new(SamplingParams::default());
    let mut rng = Arc4Random::from_seed(3, 0);
    let mut cache = DecisionCache::new(64);
    let (key, ctx) = fixture(&frames, "watched.c:1");
    for _ in 0..8 {
        cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    }
    let before = cache.stats().invalidations;
    let p_before = prob(&unit, key);
    unit.on_watched(key); // halves the probability and bumps the epoch
    let d = cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    assert_eq!(cache.stats().invalidations, before + 1);
    assert!(
        d.probability_ppm < p_before,
        "the fresh verdict sees the halved probability ({} !< {p_before})",
        d.probability_ppm
    );
}

#[test]
fn burst_entry_and_exit_invalidate_the_cache() {
    let frames = FrameTable::new();
    let params = SamplingParams::default();
    let unit = SamplingUnit::new(params);
    let mut rng = Arc4Random::from_seed(5, 0);
    let mut cache = DecisionCache::new(64);
    let (key, ctx) = fixture(&frames, "bursty.c:1");
    let start = cache.stats().invalidations;
    // Enough allocations inside one window that a refresh miss lands
    // past the threshold: cached allocations only reach the sampler's
    // burst check when their batch is absorbed, so the throttle can lag
    // by up to `refresh` allocations (the documented convergence bound).
    for _ in 0..params.burst_threshold + 2 * 64 {
        cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    }
    cache.flush(&unit);
    assert_eq!(prob(&unit, key), params.burst_ppm, "throttled to 0.0001%");
    assert!(
        cache.stats().invalidations > start,
        "burst entry must flush cached verdicts"
    );
    // Past the window the next decision exits the burst and restores
    // the floor — and flushes the caches again so no thread keeps
    // deciding at the throttled probability.
    let later = VirtInstant::BOOT + VirtDuration::from_secs(11);
    let mid = cache.stats().invalidations;
    cache.on_allocation(&unit, key, later, &mut rng, &ctx, |_| false);
    cache.flush(&unit);
    assert_eq!(prob(&unit, key), params.floor_ppm, "recovered to the floor");
    assert!(
        cache.stats().invalidations > mid,
        "burst exit must flush cached verdicts"
    );
}

#[test]
fn revive_invalidates_the_cache() {
    let frames = FrameTable::new();
    let params = SamplingParams {
        revive_chance_ppm: PPM_SCALE, // deterministic once eligible
        ..SamplingParams::default()
    };
    let unit = SamplingUnit::new(params);
    let mut rng = Arc4Random::from_seed(9, 0);
    let mut cache = DecisionCache::new(64);
    let (key, ctx) = fixture(&frames, "quiet.c:1");
    cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    for _ in 0..32 {
        unit.on_watched(key); // halve down to the floor
    }
    // Mark the floor, wait out the quiet period, allocate once more.
    cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    assert_eq!(prob(&unit, key), params.floor_ppm);
    let later = VirtInstant::BOOT + params.revive_period + VirtDuration::from_secs(1);
    let before = cache.stats().invalidations;
    let d = cache.on_allocation(&unit, key, later, &mut rng, &ctx, |_| false);
    assert_eq!(d.probability_ppm, params.revive_ppm, "revived to 0.01%");
    assert!(
        cache.stats().invalidations > before,
        "reviving must flush cached verdicts"
    );
}

#[test]
fn priors_update_invalidates_the_cache() {
    let frames = FrameTable::new();
    let mut unit = SamplingUnit::new(SamplingParams::default());
    let mut rng = Arc4Random::from_seed(11, 0);
    let mut cache = DecisionCache::new(64);
    let (key, ctx) = fixture(&frames, "risky.c:1");
    for _ in 0..8 {
        cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    }
    cache.flush(&unit); // absorb pending so the re-based value reads exactly
    let before = cache.stats().invalidations;
    unit.update_priors(AnalysisPriors::from_classes([(key, RiskClass::Suspicious)]));
    let d = cache.on_allocation(&unit, key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
    assert_eq!(cache.stats().invalidations, before + 1);
    assert_eq!(
        d.probability_ppm,
        AnalysisPriors::DEFAULT_SUSPICIOUS_PPM,
        "the fresh verdict is re-based on the suspicious prior"
    );
}

fn run(app: &BuggyApp, seed: u64, refresh: u32) -> csod::workloads::RunOutcome {
    let registry = app.registry();
    let trace = app.trace(42);
    let mut config = CsodConfig::with_seed(seed);
    config.fast_path.decision_cache_refresh = refresh;
    TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied())
}

#[test]
fn canary_detection_parity_is_exact() {
    // Canary evidence is placed and checked on every object regardless
    // of the sampling verdict, so caching verdicts must not change it
    // for any app or seed — write overflows stay caught, read
    // overflows stay canary-invisible.
    for app in BuggyApp::all() {
        for seed in 0..8 {
            let cached = run(&app, seed, 64);
            let uncached = run(&app, seed, 1);
            assert_eq!(
                cached.evidence_detected, uncached.evidence_detected,
                "{} seed {seed}: canary detection must match exactly",
                app.name
            );
        }
    }
}

#[test]
fn sure_detections_survive_caching() {
    // Apps the uncached sampler catches on every run must stay at 100%
    // through the cached fast path: the cache never loses a detection.
    for name in ["gzip", "libtiff", "polymorph"] {
        let app = BuggyApp::by_name(name).expect("known app");
        for seed in 0..20 {
            assert!(
                run(&app, seed, 1).detected,
                "{name} seed {seed}: uncached baseline detects"
            );
            assert!(
                run(&app, seed, 64).detected,
                "{name} seed {seed}: cached fast path must too"
            );
        }
    }
}

#[test]
fn watchpoint_detection_rate_matches_uncached() {
    // Watchpoint placement is probabilistic and the cache changes how
    // the per-thread generator stream is consumed, so per-seed outcomes
    // legitimately differ; the detection *rate* across the suite must
    // not. (Paper Table II averages 58% across the nine applications.)
    let runs = 24;
    let rate = |refresh: u32| -> f64 {
        let mut detections = 0u32;
        let mut total = 0u32;
        for app in BuggyApp::all() {
            for seed in 0..runs {
                detections += u32::from(run(&app, seed, refresh).watchpoint_detected);
                total += 1;
            }
        }
        f64::from(detections) / f64::from(total)
    };
    let cached = rate(64);
    let uncached = rate(1);
    assert!(
        (cached - uncached).abs() <= 0.10,
        "cached rate {cached:.3} drifted from uncached rate {uncached:.3}"
    );
}
