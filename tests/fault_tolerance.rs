//! Property tests for the no-leak invariant under injected faults.
//!
//! Whatever the fault plan does to the perf syscalls — open refused,
//! fcntl/ioctl interrupted mid-sequence, close failing with EINTR —
//! every descriptor handed out must eventually be closed and all debug
//! registers must return to free once the watchpoints are gone.

use csod::core::{ReplacementPolicy, WatchpointManager};
use csod::ctx::{ContextKey, FrameTable};
use csod::machine::{FaultPlan, Machine, ThreadId, VirtAddr, VirtDuration};
use csod::rng::Arc4Random;
use csod::workloads::{run_chaos_soak, ChaosConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full stack (Csod + heap + degradation) ends leak-free for any
    /// combination of fault rates, and never double-reports an
    /// allocation.
    #[test]
    fn chaos_soak_is_leak_free_for_any_fault_rates(
        seed in any::<u64>(),
        perf_ppm in 0u32..700_000,
        drop_ppm in 0u32..300_000,
        delay_ppm in 0u32..300_000,
        alloc_ppm in 0u32..50_000,
    ) {
        let cfg = ChaosConfig {
            seed,
            allocations: 2_000,
            perf_failure_ppm: perf_ppm,
            signal_drop_ppm: drop_ppm,
            signal_delay_ppm: delay_ppm,
            alloc_failure_ppm: alloc_ppm,
            planted_overflows: 2,
            sites: 8,
            ring: 16,
            thread_churn: 1,
            ..ChaosConfig::default()
        };
        let out = run_chaos_soak(&cfg);
        prop_assert!(
            out.leak_free(),
            "open events {} / free registers {}",
            out.open_events,
            out.free_registers
        );
        prop_assert_eq!(out.summary.allocations, 2_000);
        prop_assert_eq!(
            out.summary.frees + out.failed_allocs,
            2_000,
            "every successful allocation was freed"
        );
    }

    /// The watchpoint manager alone: arbitrary consider/remove
    /// interleavings under faults never leak a descriptor or register.
    #[test]
    fn watchpoint_interleavings_return_every_register(
        seed in any::<u64>(),
        ppm in 0u32..600_000,
        ops in proptest::collection::vec((0u8..4, 0u64..12), 1..150),
    ) {
        let frames = FrameTable::new();
        let mut machine = Machine::new();
        machine.install_fault_plan(
            FaultPlan::new(seed).perf_failures_ppm(ppm).signal_drops_ppm(ppm / 2),
        );
        let base = VirtAddr::new(0x10_0000);
        machine.map_region(base, 1 << 16, "heap").unwrap();
        let worker = machine.spawn_thread();
        let mut rng = Arc4Random::from_seed(seed, 1);
        let mut w = WatchpointManager::new(
            ReplacementPolicy::NearFifo,
            VirtDuration::from_secs(10),
        );
        for (op, n) in ops {
            let candidate = csod::core::WatchCandidate {
                object_start: base + n * 64,
                canary_addr: base + n * 64 + 56,
                key: ContextKey::new(frames.intern(&format!("s{n}")), 0),
                ctx_id: csod::core::CtxId::from_index(n as u32),
                probability_ppm: 300_000,
            };
            match op {
                0 | 1 => {
                    let _ = w.consider(&mut machine, candidate, &mut rng, |_| None);
                }
                2 => {
                    let _ = w.remove_by_object(&mut machine, candidate.object_start);
                }
                _ => machine.skip_time(VirtDuration::from_millis(1)),
            }
            // Whatever happened, bookkeeping never leaks: the number of
            // open events is exactly what the live slots hold.
            let held: usize = w.watched().map(|o| o.descriptors().count()).sum();
            prop_assert_eq!(machine.open_events(), held);
        }
        w.remove_all(&mut machine);
        let _ = machine.exit_thread(worker);
        prop_assert_eq!(machine.open_events(), 0, "descriptor leak");
        prop_assert_eq!(machine.free_registers(ThreadId::MAIN), 4, "register leak");
    }
}
