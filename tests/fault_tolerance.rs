//! Property tests for the no-leak invariant under injected faults.
//!
//! Whatever the fault plan does to the perf syscalls — open refused,
//! fcntl/ioctl interrupted mid-sequence, close failing with EINTR —
//! every descriptor handed out must eventually be closed and all debug
//! registers must return to free once the watchpoints are gone.

use csod::core::{ReplacementPolicy, WatchpointManager};
use csod::ctx::{ContextKey, FrameTable};
use csod::fleet::{FsMedia, JournalMedia, PriorsStore, MAX_IO_RETRIES};
use csod::machine::{FaultPlan, Machine, ThreadId, VirtAddr, VirtDuration};
use csod::rng::Arc4Random;
use csod::workloads::{run_chaos_soak, ChaosConfig};
use proptest::prelude::*;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// A scriptable journal media: `EINTR` storms, short writes and a byte
/// quota (`ENOSPC`) over the real filesystem.
#[derive(Debug)]
struct FaultScript {
    rng: Arc4Random,
    eintr_ppm: u32,
    short_ppm: u32,
    /// Bytes the "disk" still accepts; `None` = unlimited.
    quota: Option<usize>,
}

#[derive(Debug)]
struct FaultyMedia {
    inner: FsMedia,
    script: Arc<Mutex<FaultScript>>,
}

impl FaultyMedia {
    fn boxed(script: FaultScript) -> (Box<dyn JournalMedia>, Arc<Mutex<FaultScript>>) {
        let script = Arc::new(Mutex::new(script));
        let media = FaultyMedia {
            inner: FsMedia,
            script: Arc::clone(&script),
        };
        (Box::new(media), script)
    }
}

fn eintr() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected EINTR")
}

impl JournalMedia for FaultyMedia {
    fn append(&mut self, path: &Path, bytes: &[u8]) -> io::Result<usize> {
        let mut s = self.script.lock().unwrap();
        let (eintr_ppm, short_ppm) = (s.eintr_ppm, s.short_ppm);
        if s.rng.chance_ppm(eintr_ppm) {
            return Err(eintr());
        }
        if let Some(quota) = s.quota {
            if bytes.len() > quota {
                return Err(io::Error::other("injected ENOSPC"));
            }
            s.quota = Some(quota - bytes.len());
        }
        if bytes.len() > 1 && s.rng.chance_ppm(short_ppm) {
            return self.inner.append(path, &bytes[..bytes.len() / 2]);
        }
        self.inner.append(path, bytes)
    }

    fn write_file(&mut self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let interrupted = {
            let mut s = self.script.lock().unwrap();
            let ppm = s.eintr_ppm;
            s.rng.chance_ppm(ppm)
        };
        if interrupted {
            return Err(eintr());
        }
        self.inner.write_file(path, bytes)
    }

    fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
        let interrupted = {
            let mut s = self.script.lock().unwrap();
            let ppm = s.eintr_ppm;
            s.rng.chance_ppm(ppm)
        };
        if interrupted {
            return Err(eintr());
        }
        self.inner.rename(from, to)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn remove(&mut self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn sync(&mut self, path: &Path) -> io::Result<()> {
        self.inner.sync(path)
    }
}

fn store_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "csod-fault-store-{tag}-{}-{case:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full stack (Csod + heap + degradation) ends leak-free for any
    /// combination of fault rates, and never double-reports an
    /// allocation.
    #[test]
    fn chaos_soak_is_leak_free_for_any_fault_rates(
        seed in any::<u64>(),
        perf_ppm in 0u32..700_000,
        drop_ppm in 0u32..300_000,
        delay_ppm in 0u32..300_000,
        alloc_ppm in 0u32..50_000,
    ) {
        let cfg = ChaosConfig {
            seed,
            allocations: 2_000,
            perf_failure_ppm: perf_ppm,
            signal_drop_ppm: drop_ppm,
            signal_delay_ppm: delay_ppm,
            alloc_failure_ppm: alloc_ppm,
            planted_overflows: 2,
            sites: 8,
            ring: 16,
            thread_churn: 1,
            ..ChaosConfig::default()
        };
        let out = run_chaos_soak(&cfg);
        prop_assert!(
            out.leak_free(),
            "open events {} / free registers {}",
            out.open_events,
            out.free_registers
        );
        prop_assert_eq!(out.summary.allocations, 2_000);
        prop_assert_eq!(
            out.summary.frees + out.failed_allocs,
            2_000,
            "every successful allocation was freed"
        );
    }

    /// The watchpoint manager alone: arbitrary consider/remove
    /// interleavings under faults never leak a descriptor or register.
    #[test]
    fn watchpoint_interleavings_return_every_register(
        seed in any::<u64>(),
        ppm in 0u32..600_000,
        ops in proptest::collection::vec((0u8..4, 0u64..12), 1..150),
    ) {
        let frames = FrameTable::new();
        let mut machine = Machine::new();
        machine.install_fault_plan(
            FaultPlan::new(seed).perf_failures_ppm(ppm).signal_drops_ppm(ppm / 2),
        );
        let base = VirtAddr::new(0x10_0000);
        machine.map_region(base, 1 << 16, "heap").unwrap();
        let worker = machine.spawn_thread();
        let mut rng = Arc4Random::from_seed(seed, 1);
        let mut w = WatchpointManager::new(
            ReplacementPolicy::NearFifo,
            VirtDuration::from_secs(10),
        );
        for (op, n) in ops {
            let candidate = csod::core::WatchCandidate {
                object_start: base + n * 64,
                canary_addr: base + n * 64 + 56,
                key: ContextKey::new(frames.intern(&format!("s{n}")), 0),
                ctx_id: csod::core::CtxId::from_index(n as u32),
                probability_ppm: 300_000,
            };
            match op {
                0 | 1 => {
                    let _ = w.consider(&mut machine, candidate, &mut rng, |_| None);
                }
                2 => {
                    let _ = w.remove_by_object(&mut machine, candidate.object_start);
                }
                _ => machine.skip_time(VirtDuration::from_millis(1)),
            }
            // Whatever happened, bookkeeping never leaks: the number of
            // open events is exactly what the live slots hold.
            let held: usize = w.watched().map(|o| o.descriptors().count()).sum();
            prop_assert_eq!(machine.open_events(), held);
        }
        w.remove_all(&mut machine);
        let _ = machine.exit_thread(worker);
        prop_assert_eq!(machine.open_events(), 0, "descriptor leak");
        prop_assert_eq!(machine.free_registers(ThreadId::MAIN), 4, "register leak");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The priors store under EINTR storms and short writes: retries are
    /// bounded (the store degrades instead of spinning), and once a
    /// checkpoint lands, a clean-media restart recovers every single
    /// observation — no data loss for any fault rates.
    #[test]
    fn priors_store_loses_nothing_under_eintr_and_short_writes(
        seed in any::<u64>(),
        eintr_ppm in 0u32..600_000,
        short_ppm in 0u32..600_000,
        sites in 1usize..30,
    ) {
        let dir = store_dir("retry", seed);
        let (media, _script) = FaultyMedia::boxed(FaultScript {
            rng: Arc4Random::from_seed(seed, 7),
            eintr_ppm,
            short_ppm,
            quota: None,
        });
        let mut store = PriorsStore::open_with_media(&dir, media);
        for i in 0..sites {
            store.observe(&format!("faulty.c:{i}|main.c:1"), 1 + i as u64);
        }
        // The in-memory aggregate never dropped anything, durable or not.
        prop_assert_eq!(store.priors().len(), sites);

        // A checkpoint eventually lands (each attempt fails only on 9
        // consecutive injected EINTRs), making the whole aggregate
        // durable regardless of what the WAL suffered.
        let mut landed = false;
        for _ in 0..100 {
            if store.checkpoint().is_ok() {
                landed = true;
                break;
            }
        }
        prop_assert!(landed, "checkpoint never landed under eintr={eintr_ppm}");
        prop_assert!(!store.is_degraded(), "checkpoint clears degraded mode");
        drop(store);

        let recovered = PriorsStore::open(&dir).unwrap();
        prop_assert_eq!(recovered.priors().len(), sites, "no data loss");
        for i in 0..sites {
            prop_assert_eq!(
                recovered.priors().count(&format!("faulty.c:{i}|main.c:1")),
                1 + i as u64
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn eintr_storm_gives_up_after_the_bounded_retry_budget() {
    let dir = store_dir("bounded", 0);
    let (media, _script) = FaultyMedia::boxed(FaultScript {
        rng: Arc4Random::from_seed(1, 7),
        eintr_ppm: 1_000_000, // every media call is interrupted
        short_ppm: 0,
        quota: None,
    });
    let mut store = PriorsStore::open_with_media(&dir, media);
    store.observe("stormy.c:1|main.c:1", 1);
    // append_fully retried exactly MAX_IO_RETRIES + 1 times, then the
    // store degraded to in-memory buffering instead of spinning forever.
    assert_eq!(store.stats().io_retries, u64::from(MAX_IO_RETRIES) + 1);
    assert!(store.is_degraded());
    assert_eq!(store.stats().buffered_observations, 1);
    // The observation is not lost — it sits in the aggregate...
    assert!(store.priors().contains("stormy.c:1|main.c:1"));
    // ...and a checkpoint under the same storm fails *cleanly*: bounded
    // retries, an error, and nothing durable destroyed.
    assert!(store.checkpoint().is_err());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn enospc_degrades_then_checkpoint_recovers_everything() {
    let dir = store_dir("enospc", 0);
    let (media, script) = FaultyMedia::boxed(FaultScript {
        rng: Arc4Random::from_seed(2, 7),
        eintr_ppm: 0,
        short_ppm: 0,
        quota: Some(64), // room for roughly one WAL frame, then ENOSPC
    });
    let mut store = PriorsStore::open_with_media(&dir, media);
    store.observe("first.c:1|main.c:1", 1);
    store.observe("second.c:2|main.c:1", 2);
    store.observe("third.c:3|main.c:1", 3);
    assert!(store.is_degraded(), "the full disk degraded the store");
    assert!(store.stats().buffered_observations >= 1);
    assert_eq!(store.priors().len(), 3, "buffering kept every observation");

    // Space comes back; the next checkpoint folds the buffered tail in
    // and the store is fully durable again.
    script.lock().unwrap().quota = None;
    store.checkpoint().unwrap();
    assert!(!store.is_degraded());
    assert_eq!(store.stats().buffered_observations, 0);
    drop(store);

    let recovered = PriorsStore::open(&dir).unwrap();
    assert_eq!(recovered.priors().count("first.c:1|main.c:1"), 1);
    assert_eq!(recovered.priors().count("second.c:2|main.c:1"), 2);
    assert_eq!(recovered.priors().count("third.c:3|main.c:1"), 3);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn failed_checkpoint_leaves_the_previous_one_authoritative() {
    let dir = store_dir("ckpt-fail", 0);
    // A clean first generation: one durable checkpoint.
    let mut store = PriorsStore::open(&dir).unwrap();
    store.observe("keep.c:1|main.c:1", 5);
    store.checkpoint().unwrap();
    drop(store);

    // Second generation under a total EINTR storm: the new checkpoint
    // cannot land, and says so.
    let (media, _script) = FaultyMedia::boxed(FaultScript {
        rng: Arc4Random::from_seed(3, 7),
        eintr_ppm: 1_000_000,
        short_ppm: 0,
        quota: None,
    });
    let mut store = PriorsStore::open_with_media(&dir, media);
    assert_eq!(store.priors().count("keep.c:1|main.c:1"), 5);
    store.observe("new.c:2|main.c:1", 1);
    assert!(store.checkpoint().is_err());
    drop(store);

    // The previous checkpoint is untouched: recovery still serves it.
    let recovered = PriorsStore::open(&dir).unwrap();
    assert_eq!(recovered.priors().count("keep.c:1|main.c:1"), 5);
    let _ = std::fs::remove_dir_all(&dir);
}
