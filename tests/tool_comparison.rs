//! CSOD vs the ASan model: the comparative claims of Sections V-A and
//! V-B, checked end-to-end on the workload models.

use csod::asan::AsanConfig;
use csod::core::CsodConfig;
use csod::workloads::{BuggyApp, OverflowKind, PerfApp, ToolSpec, TraceRunner};

fn asan_spec(app: &BuggyApp) -> ToolSpec {
    ToolSpec::Asan {
        config: AsanConfig::default(),
        instrumented: app.asan_instrumented(),
    }
}

#[test]
fn asan_misses_exactly_the_three_library_bugs() {
    let mut missed = Vec::new();
    for app in BuggyApp::all() {
        let registry = app.registry();
        let trace = app.trace(1);
        let outcome = TraceRunner::new(&registry, asan_spec(&app)).run(trace.iter().copied());
        if !outcome.detected {
            missed.push(app.name);
        }
    }
    assert_eq!(
        missed,
        vec!["LibHX-3.4", "Libtiff-4.01", "Zziplib-0.13.62"],
        "paper Section V-A1: ASan cannot detect Libtiff, LibHX and Zziplib"
    );
}

#[test]
fn csod_eventually_detects_every_bug_asan_misses() {
    for name in ["libhx", "libtiff", "zziplib"] {
        let app = BuggyApp::by_name(name).unwrap();
        let registry = app.registry();
        let trace = app.trace(1);
        let detected = (0..50).any(|seed| {
            TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(seed)))
                .run(trace.iter().copied())
                .watchpoint_detected
        });
        assert!(detected, "{name}: CSOD must detect within 50 executions");
    }
}

#[test]
fn csod_never_false_positives_on_any_clean_perf_workload() {
    for app in PerfApp::all() {
        let mut app = app;
        // Shrink the heavy apps to keep the suite fast.
        app.exec_cap = app.exec_cap.min(5_000);
        app.base_accesses /= 100;
        app.base_compute /= 100;
        let registry = app.registry();
        let outcome = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 3);
        assert!(
            !outcome.detected,
            "{}: CSOD reported a bug in a bug-free run",
            app.name
        );
    }
}

#[test]
fn csod_is_cheaper_than_asan_on_every_perf_workload() {
    // Full-scale runs: the ordering is a property of the per-operation
    // cost ratios, which shrinking the workload would distort.
    for app in PerfApp::all() {
        let registry = app.registry();
        let csod = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 5);
        let asan = app.run(
            &registry,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
            5,
        );
        assert!(
            csod.overhead <= asan.overhead + 1e-9,
            "{}: CSOD {:.3} vs ASan {:.3}",
            app.name,
            csod.overhead,
            asan.overhead
        );
    }
}

#[test]
fn evidence_guarantees_second_execution_for_overwrites() {
    let dir = std::env::temp_dir().join("csod-comparison-tests");
    std::fs::create_dir_all(&dir).unwrap();
    for app in BuggyApp::all() {
        if app.vulnerability != OverflowKind::OverWrite {
            continue;
        }
        let registry = app.registry();
        let trace = app.trace(42);
        // Find a first execution that misses with the watchpoints.
        let Some(seed) = (0..100).find(|&s| {
            !TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(s)))
                .run(trace.iter().copied())
                .watchpoint_detected
        }) else {
            continue; // tiny apps never miss; nothing to verify
        };
        let path = dir.join(format!("{}-{}.evidence", app.name, std::process::id()));
        let _ = std::fs::remove_file(&path);
        let mut c1 = CsodConfig::with_seed(seed);
        c1.evidence_path = Some(path.clone());
        let first = TraceRunner::new(&registry, ToolSpec::Csod(c1)).run(trace.iter().copied());
        assert!(
            first.evidence_detected,
            "{}: a missed over-write must leave canary evidence",
            app.name
        );
        let mut c2 = CsodConfig::with_seed(seed + 7_777);
        c2.evidence_path = Some(path.clone());
        let second = TraceRunner::new(&registry, ToolSpec::Csod(c2)).run(trace.iter().copied());
        assert!(
            second.watchpoint_detected,
            "{}: the second execution always detects (paper V-A2)",
            app.name
        );
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn over_reads_leave_no_canary_evidence() {
    for name in ["heartbleed", "libdwarf", "zziplib"] {
        let app = BuggyApp::by_name(name).unwrap();
        let registry = app.registry();
        let trace = app.trace(42);
        for seed in 0..5 {
            let outcome = TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(seed)))
                .run(trace.iter().copied());
            assert!(
                !outcome.evidence_detected,
                "{name}: reads must not corrupt canaries"
            );
        }
    }
}

#[test]
fn asan_detects_overwrites_and_overreads_in_instrumented_code() {
    for name in ["gzip", "heartbleed", "libdwarf", "memcached", "mysql", "polymorph"] {
        let app = BuggyApp::by_name(name).unwrap();
        let registry = app.registry();
        let trace = app.trace(1);
        let outcome = TraceRunner::new(&registry, asan_spec(&app)).run(trace.iter().copied());
        assert!(outcome.detected, "{name}: ASan detects instrumented bugs");
    }
}

#[test]
fn io_bound_apps_show_negligible_overhead_for_both_tools() {
    for name in ["aget", "pfscan"] {
        let mut app = PerfApp::by_name(name).unwrap();
        app.base_accesses /= 10;
        app.base_compute /= 10;
        let registry = app.registry();
        let csod = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 1);
        let asan = app.run(
            &registry,
            ToolSpec::Asan {
                config: AsanConfig::default(),
                instrumented: app.asan_instrumented(),
            },
            1,
        );
        assert!(csod.overhead < 1.05, "{name} csod {:.3}", csod.overhead);
        assert!(asan.overhead < 1.05, "{name} asan {:.3}", asan.overhead);
    }
}

#[test]
fn only_the_paper_trio_exceeds_ten_percent_without_evidence() {
    // Figure 7 shape: "CSOD w/o Evidence introduces more than 10%
    // performance overhead for only three applications: Canneal, Ferret,
    // and Raytrace."
    let mut over_ten = Vec::new();
    for app in PerfApp::all() {
        let registry = app.registry();
        let outcome = app.run(
            &registry,
            ToolSpec::Csod(CsodConfig::without_evidence()),
            1,
        );
        if outcome.overhead > 1.10 {
            over_ten.push(app.name);
        }
    }
    assert_eq!(over_ten, vec!["Canneal", "Ferret", "Raytrace"]);
}

#[test]
fn memory_overhead_ordering_matches_table_five() {
    // CSOD's total memory overhead is small; ASan's is larger.
    let mut total = [0u64; 3];
    for app in PerfApp::all() {
        let mut app = app;
        app.exec_cap = app.exec_cap.min(10_000);
        app.base_accesses = 0;
        app.base_compute = 0;
        let registry = app.registry();
        let base = app.run(&registry, ToolSpec::Baseline, 2);
        let csod = app.run(&registry, ToolSpec::Csod(CsodConfig::default()), 2);
        let asan = app.run(
            &registry,
            ToolSpec::Asan {
                config: AsanConfig {
                    redzone_size: 16,
                    quarantine_bytes: 256 << 10,
                },
                instrumented: app.asan_instrumented(),
            },
            2,
        );
        total[0] += base.peak_heap_kb;
        total[1] += csod.peak_heap_kb;
        total[2] += asan.peak_heap_kb + asan.tool_extra_kb;
    }
    assert!(total[1] >= total[0], "CSOD adds memory");
    assert!(total[2] > total[1], "ASan adds more memory than CSOD");
    assert!(
        total[1] < total[0] * 115 / 100,
        "CSOD total within ~15% of original (paper: 105%)"
    );
}
