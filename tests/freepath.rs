//! Free-path overhaul invariants: detection parity between the deferred
//! batched teardown / fd-indexed dispatch fast path and the
//! paper-faithful synchronous teardown / linear scan, plus the parallel
//! scenario driver reproducing serial runs exactly.

use csod::core::{CsodConfig, FastPathParams};
use csod::workloads::{run_traces_parallel, BuggyApp, ToolSpec, TraceRunner};

fn config(fast_path: FastPathParams, seed: u64) -> CsodConfig {
    CsodConfig {
        fast_path,
        seed,
        ..CsodConfig::default()
    }
}

#[test]
fn deferred_teardown_matches_synchronous_reports_on_every_app() {
    // The acceptance bar: across the whole effectiveness corpus and a
    // handful of seeds, the fast path and the paper-faithful path emit
    // *identical* reports — no lost traps, no false reports from
    // recycled addresses, same fd resolution.
    for app in BuggyApp::all() {
        let registry = app.registry();
        let trace = app.trace(42);
        for seed in 0..5 {
            let fast = TraceRunner::new(
                &registry,
                ToolSpec::Csod(config(FastPathParams::default(), seed)),
            )
            .run(trace.iter().copied());
            let faithful = TraceRunner::new(
                &registry,
                ToolSpec::Csod(config(FastPathParams::synchronous_teardown(), seed)),
            )
            .run(trace.iter().copied());
            assert_eq!(
                fast.reports, faithful.reports,
                "{} seed {seed}: reports diverged",
                app.name
            );
            assert_eq!(fast.detected, faithful.detected, "{} seed {seed}", app.name);
            assert_eq!(
                fast.watchpoint_detected, faithful.watchpoint_detected,
                "{} seed {seed}",
                app.name
            );
            assert_eq!(fast.traps, faithful.traps, "{} seed {seed}", app.name);
            assert_eq!(
                fast.watched_times, faithful.watched_times,
                "{} seed {seed}",
                app.name
            );
        }
    }
}

#[test]
fn fast_path_never_issues_more_syscalls_than_the_faithful_path() {
    // Batching exists to save kernel entries; on a free-heavy workload
    // the deferred path must come in strictly under the per-fd route.
    let app = BuggyApp::by_name("memcached").unwrap();
    let registry = app.registry();
    let trace = app.trace(7);
    let fast = TraceRunner::new(
        &registry,
        ToolSpec::Csod(config(FastPathParams::default(), 1)),
    )
    .run(trace.iter().copied());
    let faithful = TraceRunner::new(
        &registry,
        ToolSpec::Csod(config(FastPathParams::synchronous_teardown(), 1)),
    )
    .run(trace.iter().copied());
    assert!(
        fast.syscalls < faithful.syscalls,
        "batched teardown should save syscalls: {} vs {}",
        fast.syscalls,
        faithful.syscalls
    );
    assert!(fast.teardowns_batched > 0);
    assert_eq!(faithful.teardowns_batched, 0);
}

#[test]
fn parallel_trace_driver_reproduces_serial_outcomes() {
    let app = BuggyApp::by_name("gzip").unwrap();
    let registry = app.registry();
    let traces: Vec<Vec<_>> = (0..8).map(|seed| app.trace(seed)).collect();
    let tool = ToolSpec::Csod(CsodConfig::default());
    let parallel = run_traces_parallel(&registry, &tool, &traces, 4);
    for (trace, par) in traces.iter().zip(&parallel) {
        let serial =
            TraceRunner::new(&registry, tool.clone()).run(trace.iter().cloned());
        assert_eq!(serial.reports, par.reports);
        assert_eq!(serial.detected, par.detected);
        assert_eq!(serial.syscalls, par.syscalls);
        assert_eq!(serial.total_ns, par.total_ns);
    }
}
