//! The trap-report stream survives its writer dying.
//!
//! Satellite regression for the sink hardening: a writer killed
//! mid-record leaves a torn tail the reader must absorb without losing
//! the records before it, and a writer that panics still flushes its
//! buffer and terminates its stream on the way down, because both the
//! pipeline and the sink do their duty in `Drop` — which runs during
//! unwind.

use csod::core::{Csod, CsodConfig, ReportPipeline, TraceParams};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::fleet::{FleetPriors, Ingestor};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{Machine, ThreadId};
use std::path::PathBuf;
use std::sync::Arc;

fn stream_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("csod-stream-tol-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs a small detecting workload writing its stream to `path`; when
/// `die` is set, panics mid-run instead of finishing cleanly.
fn write_stream(path: &std::path::Path, die: bool) {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let mut csod = Csod::new(
        CsodConfig {
            trace: TraceParams {
                trap_report_path: Some(path.to_path_buf()),
                ..TraceParams::default()
            },
            ..CsodConfig::default()
        },
        Arc::clone(&frames),
    );
    for i in 0..3 {
        let site = format!("buggy.c:{i}");
        let key = ContextKey::new(frames.intern(&site), 0x40);
        let ctx = CallingContext::from_locations(&frames, [site.as_str(), "main.c:1"]);
        let p = csod
            .malloc(&mut machine, &mut heap, ThreadId::MAIN, 24, key, &ctx)
            .unwrap();
        machine.raw_store_u64(p + 24, 0xDEAD_BEEF).unwrap();
        csod.free(&mut machine, &mut heap, ThreadId::MAIN, p).unwrap();
    }
    if die {
        panic!("writer dies before finish()");
    }
    csod.finish(&mut machine);
}

#[test]
fn killed_writer_mid_record_reader_recovers_the_rest() {
    let dir = stream_dir("kill");
    let path = dir.join("stream.jsonl");
    write_stream(&path, false);

    // Kill the writer mid-record: keep the first record and half of the
    // second, byte-for-byte what a `kill -9` under a page-cache flush
    // leaves behind.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "three detections plus terminator: {text}");
    let torn = format!("{}\n{}", lines[0], &lines[1][..lines[1].len() / 2]);
    std::fs::write(&path, torn).unwrap();

    let mut ingestor = Ingestor::new();
    let mut priors = FleetPriors::new();
    let summary = ingestor.ingest_file(&path, &mut priors);
    assert_eq!(summary.parsed, 1, "the intact record survives");
    assert_eq!(summary.corrupt, 1, "the torn record is counted, not fatal");
    assert!(!summary.terminated, "no terminator marks the dead writer");
    assert_eq!(ingestor.stats().streams_unterminated, 1);
    assert!(priors.contains("buggy.c:0|main.c:1"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn panicking_writer_still_flushes_and_terminates_its_stream() {
    let dir = stream_dir("panic");
    let path = dir.join("stream.jsonl");
    let p = path.clone();
    let died = std::panic::catch_unwind(move || write_stream(&p, true));
    assert!(died.is_err(), "the writer panicked as arranged");

    // The unwind dropped Csod -> pipeline terminator -> sink flush, so
    // the detections made before the panic are all on disk and the
    // stream is properly closed.
    let text = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 4, "three canary-at-free records + terminator: {text}");
    assert_eq!(*lines.last().unwrap(), ReportPipeline::terminator_line(3));

    let mut ingestor = Ingestor::new();
    let mut priors = FleetPriors::new();
    let summary = ingestor.ingest_file(&path, &mut priors);
    assert!(summary.terminated);
    assert_eq!(summary.parsed, 3);
    assert_eq!(ingestor.stats().records_lost, 0);
    for i in 0..3 {
        assert!(priors.contains(&format!("buggy.c:{i}|main.c:1")));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_never_reorders_or_fabricates_records() {
    let dir = stream_dir("prefix");
    let path = dir.join("stream.jsonl");
    write_stream(&path, false);
    let bytes = std::fs::read(&path).unwrap();

    // At *every* byte offset the readable prefix of records is exactly
    // a prefix of the full stream's records.
    let mut full = FleetPriors::new();
    Ingestor::new().ingest_file(&path, &mut full);
    let full_sigs: Vec<&str> = full.iter().map(|(sig, _)| sig).collect();
    for cut in 0..=bytes.len() {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let mut priors = FleetPriors::new();
        let mut ingestor = Ingestor::new();
        ingestor.ingest_file(&path, &mut priors);
        for (sig, _) in priors.iter() {
            assert!(
                full_sigs.contains(&sig),
                "cut {cut} fabricated context {sig}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
