//! Chaos soak and degradation-ladder end-to-end tests.
//!
//! The acceptance scenario for the fault-injection layer: a soak of one
//! million allocations with a 30 % perf-syscall failure rate and
//! intermittent SIGTRAP drops must complete with zero panics, zero
//! leaked descriptors or debug registers, and still detect planted
//! overflows through the canary fallback. A second test drives the full
//! degradation ladder — watchpoints → canary-only → re-armed — and
//! checks the transitions are observable in the run summary.

use csod::core::{CsodConfig, DegradationParams};
use csod::machine::VirtDuration;
use csod::workloads::{run_chaos_fleet, run_chaos_soak, ChaosConfig};

/// Scale knob for the nightly CI soak: `CSOD_SOAK_ALLOCS` /
/// `CSOD_FLEET_RUNS` grow the storms far past the per-push defaults
/// without forking the test logic.
fn env_scale(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v > 0)
        .unwrap_or(default)
}

#[test]
fn million_allocation_soak_under_fault_storm_is_leak_free() {
    let allocations = env_scale("CSOD_SOAK_ALLOCS", 1_000_000);
    let cfg = ChaosConfig {
        seed: 0xD15EA5E,
        allocations,
        perf_failure_ppm: 300_000, // 30 % of perf syscalls fail
        signal_drop_ppm: 100_000,  // 10 % of SIGTRAPs vanish
        signal_delay_ppm: 50_000,
        alloc_failure_ppm: 500,
        planted_overflows: 16,
        csod: CsodConfig {
            degradation: DegradationParams {
                // Recover fast relative to the soak's virtual clock so the
                // watchpoint path keeps re-arming inside the storm instead
                // of sitting out the whole run in canary-only mode.
                retry_backoff: VirtDuration::from_micros(100),
                max_backoff: VirtDuration::from_millis(2),
                probe_interval: VirtDuration::from_millis(2),
                // Quarantine leniently: with a 30 % syscall failure rate
                // almost 90 % of installs fail, so the default threshold
                // would bench every context within the first few seconds.
                quarantine_threshold: 50,
                quarantine_period: VirtDuration::from_millis(5),
                ..DegradationParams::default()
            },
            ..CsodConfig::default()
        },
        ..ChaosConfig::default()
    };
    let out = run_chaos_soak(&cfg);

    // Zero fd / debug-register leaks, checked after finish().
    assert!(
        out.leak_free(),
        "leaked: {} open events, {}/{} registers free",
        out.open_events,
        out.free_registers,
        out.total_registers
    );
    assert_eq!(out.summary.allocations, allocations);
    assert_eq!(out.planted, 16);

    // The storm actually happened: the plan injected failures and the
    // runtime absorbed them (visible in the health counters).
    assert!(out.faults.perf_failures() > 0, "no faults injected?");
    // Signal drops need traps to drop; below the stock scale (a smoke
    // run with CSOD_SOAK_ALLOCS lowered) too few watchpoints survive
    // the storm to guarantee one.
    if allocations >= 1_000_000 {
        assert!(out.faults.dropped_signals > 0);
    }
    assert!(out.summary.install_failures > 0);

    // Detection survived the storm: the planted overflows were caught
    // (canary evidence does not depend on the flaky backend).
    assert!(out.detected, "planted overflows went unnoticed");
    assert!(
        out.summary.canary_free_hits + out.summary.canary_exit_hits > 0,
        "canary fallback found nothing"
    );
}

#[test]
fn degradation_ladder_degrades_to_canary_only_then_recovers() {
    // A busy window during which every perf_event_open fails with EBUSY
    // (a co-resident debugger holding the registers), long enough to
    // push the backend past the degrade threshold.
    let cfg = ChaosConfig {
        seed: 0xBADD,
        allocations: 120_000,
        perf_failure_ppm: 0, // the window is the only failure source
        signal_drop_ppm: 0,
        signal_delay_ppm: 0,
        alloc_failure_ppm: 0,
        busy_window: Some((VirtDuration::from_millis(1), VirtDuration::from_millis(100))),
        planted_overflows: 8,
        csod: CsodConfig {
            degradation: DegradationParams {
                retry_backoff: VirtDuration::from_millis(1),
                max_backoff: VirtDuration::from_millis(10),
                degrade_threshold: 4,
                probe_interval: VirtDuration::from_millis(20),
                // Keep quarantine out of the way: this test is about the
                // backend-wide ladder, not per-context benching.
                quarantine_threshold: 1_000,
                ..DegradationParams::default()
            },
            ..CsodConfig::default()
        },
        ..ChaosConfig::default()
    };
    let out = run_chaos_soak(&cfg);

    assert!(out.leak_free());
    // The ladder went down: watchpoints -> canary-only...
    assert!(
        out.summary.degradations >= 1,
        "never degraded: {} install failures",
        out.summary.install_failures
    );
    // ...and detection kept working there (planted overflows are caught
    // by canaries regardless of the backend)...
    assert!(out.detected);
    // ...then a probe succeeded after the busy window and re-armed the
    // watchpoint path.
    assert!(out.summary.recoveries >= 1, "never recovered");
    assert!(
        !out.summary.canary_only,
        "run ended degraded despite a healthy backend"
    );
    // Re-armed means real watchpoints again: objects were installed
    // after recovery (watched_times counts successful installs only).
    assert!(out.summary.watched_times > 0);

    // The transitions are also visible in the rendered summary block.
    let text = out.summary.to_string();
    assert!(text.contains("health:"));
    assert!(text.contains("mode: watchpoints"));
}

#[test]
fn parallel_fleet_of_soaks_is_deterministic_and_leak_free() {
    // Four independent storms fanned across OS threads — each owns its
    // machine and runtime, so the fleet must reproduce the serial soaks
    // bit for bit, leak checks included. The fault rates are milder than
    // the acceptance storm: a Figure-3 install is many syscalls, and at
    // 30 % per-syscall failure essentially none succeed — here we want
    // watchpoints to actually install so the deferred-teardown path runs.
    let runs = env_scale("CSOD_FLEET_RUNS", 4);
    let configs: Vec<ChaosConfig> = (0..runs)
        .map(|i| ChaosConfig {
            seed: 0xF1EE7 + i,
            allocations: 50_000,
            perf_failure_ppm: 10_000,
            ..ChaosConfig::default()
        })
        .collect();
    let fleet = run_chaos_fleet(&configs, 4);
    assert_eq!(fleet.len(), configs.len());
    for (cfg, out) in configs.iter().zip(&fleet) {
        assert!(out.leak_free());
        assert_eq!(out.summary.allocations, 50_000);
        // The overhauled free path actually engaged: most frees are of
        // unwatched objects and skip the WMU; watched frees queue their
        // Figure-4 teardowns for batched drains.
        assert!(out.summary.frees_fast_filtered > 0, "filter never hit");
        assert!(out.summary.teardowns_batched > 0, "nothing batched");
        let serial = run_chaos_soak(cfg);
        assert_eq!(
            serial.summary, out.summary,
            "a soak's outcome must not depend on scheduling"
        );
    }
}

#[test]
fn quarantine_is_reported_when_a_context_keeps_failing() {
    // A permanent 100 % open-failure rate: every install fails, contexts
    // cross the quarantine threshold, and the backend degrades for good.
    let cfg = ChaosConfig {
        seed: 3,
        allocations: 5_000,
        perf_failure_ppm: 1_000_000,
        signal_drop_ppm: 0,
        signal_delay_ppm: 0,
        alloc_failure_ppm: 0,
        planted_overflows: 4,
        sites: 4,
        csod: CsodConfig {
            degradation: DegradationParams {
                retry_backoff: VirtDuration::from_micros(100),
                max_backoff: VirtDuration::from_millis(1),
                quarantine_threshold: 2,
                quarantine_period: VirtDuration::from_secs(3600),
                ..DegradationParams::default()
            },
            ..CsodConfig::default()
        },
        ..ChaosConfig::default()
    };
    let out = run_chaos_soak(&cfg);

    assert!(out.leak_free());
    assert!(out.summary.canary_only, "backend never came back");
    assert_eq!(out.summary.watched_times, 0, "no install can succeed");
    assert!(out.summary.quarantined_contexts >= 1);
    // Canary-only mode still detects the planted overflows.
    assert!(out.detected);
    assert!(out.summary.to_string().contains("mode: canary-only"));
}
