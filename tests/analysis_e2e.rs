//! End-to-end tests of the static-analysis → priors → runtime loop:
//! analyze a workload offline, feed the resulting [`AnalysisPriors`]
//! into CSOD, and check the run is cheaper (fewer watch slots burned on
//! proven-safe contexts), no less effective, and sound (zero overflows
//! from proven-safe contexts).

use csod::analyze::{analyze, RiskReport};
use csod::core::{AnalysisPriors, CsodConfig, RiskClass};
use csod::workloads::{BuggyApp, RunOutcome, ToolSpec, TraceRunner};

fn run(app: &BuggyApp, priors: Option<AnalysisPriors>, seed: u64) -> RunOutcome {
    let registry = app.registry();
    let trace = app.trace(42);
    let mut config = match priors {
        Some(p) => CsodConfig::with_priors(p),
        None => CsodConfig::default(),
    };
    config.seed = seed;
    TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied())
}

fn priors_of(app: &BuggyApp) -> AnalysisPriors {
    let registry = app.registry();
    analyze(&registry, &app.trace(42)).to_priors(&registry)
}

#[test]
fn soundness_counter_stays_zero_on_every_app() {
    for app in BuggyApp::all() {
        let priors = priors_of(&app);
        for seed in 0..8 {
            let outcome = run(&app, Some(priors.clone()), seed);
            assert_eq!(
                outcome.proven_safe_overflows, 0,
                "{} seed {seed}: overflow from a proven-safe context",
                app.name
            );
        }
    }
}

#[test]
fn priors_cut_proven_safe_installs_by_a_quarter() {
    // Aggregate across the suite: installs landing on contexts the
    // analyzer proved safe must drop by >= 25% once priors are on.
    let mut baseline_safe = 0u64;
    let mut primed_safe = 0u64;
    for app in BuggyApp::all() {
        let priors = priors_of(&app);
        for seed in 0..4 {
            let default_outcome = run(&app, None, seed);
            baseline_safe += default_outcome
                .context_watch_counts
                .iter()
                .filter(|(key, _)| priors.class_of(*key) == Some(RiskClass::ProvenSafe))
                .map(|(_, count)| count)
                .sum::<u64>();
            let primed_outcome = run(&app, Some(priors.clone()), seed);
            primed_safe += primed_outcome.proven_safe_installs;
            // Cross-check the two accounting paths agree.
            let primed_snapshot: u64 = primed_outcome
                .context_watch_counts
                .iter()
                .filter(|(key, _)| priors.class_of(*key) == Some(RiskClass::ProvenSafe))
                .map(|(_, count)| count)
                .sum();
            assert_eq!(primed_snapshot, primed_outcome.proven_safe_installs);
        }
    }
    assert!(
        baseline_safe > 0,
        "baseline must spend some installs on proven-safe contexts"
    );
    assert!(
        primed_safe * 4 <= baseline_safe * 3,
        "priors saved too little: {primed_safe} vs baseline {baseline_safe}"
    );
}

#[test]
fn priors_report_savings_in_the_run_summary_counters() {
    let app = BuggyApp::by_name("mysql").unwrap();
    let outcome = run(&app, Some(priors_of(&app)), 1);
    assert!(
        outcome.prior_availability_skips > 0,
        "proven-safe contexts must skip the availability bypass"
    );
    assert!(outcome.proven_safe_allocs > 0);
}

#[test]
fn report_round_trips_to_disk_and_back_into_priors() {
    let app = BuggyApp::by_name("heartbleed").unwrap();
    let registry = app.registry();
    let report = analyze(&registry, &app.trace(42));
    let dir = std::env::temp_dir().join("csod-analysis-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("heartbleed.tsv");
    report.save(&path).unwrap();
    let loaded = RiskReport::load(&path, &registry).unwrap();
    assert_eq!(loaded, report);
    let outcome = run(&app, Some(loaded.to_priors(&registry)), 3);
    assert_eq!(outcome.proven_safe_overflows, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn suspicious_contexts_are_watched_more_than_default() {
    // The planted bug context is the one suspicious site; with priors
    // on it should be watched in (nearly) every execution.
    let app = BuggyApp::by_name("memcached").unwrap();
    let priors = priors_of(&app);
    let runs: usize = 24;
    let primed_hits = (0..runs)
        .filter(|&seed| run(&app, Some(priors.clone()), seed as u64).suspicious_installs > 0)
        .count();
    assert!(
        primed_hits * 10 >= runs * 8,
        "suspicious context watched in only {primed_hits}/{runs} runs"
    );
}
