//! End-to-end observability: a seeded overflow must come out the other
//! side of the trap-report pipeline as a machine-readable JSONL record,
//! the metrics registry must snapshot the same run coherently, and the
//! event trace must narrate it.

use csod::core::{Csod, CsodConfig, TrapReport};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{Machine, SiteToken, ThreadId};
use csod::trace::TraceEventKind;
use std::sync::Arc;

struct World {
    machine: Machine,
    heap: SimHeap,
    csod: Csod,
    frames: Arc<FrameTable>,
}

fn world(config: CsodConfig) -> World {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let csod = Csod::new(config, Arc::clone(&frames));
    World {
        machine,
        heap,
        csod,
        frames,
    }
}

impl World {
    fn malloc(&mut self, site: &str, size: u64) -> csod::machine::VirtAddr {
        let key = ContextKey::new(self.frames.intern(site), 0x40);
        let ctx = CallingContext::from_locations(&self.frames, [site, "request.c:210", "main.c:1"]);
        self.csod
            .malloc(&mut self.machine, &mut self.heap, ThreadId::MAIN, size, key, &ctx)
            .unwrap()
    }

    fn free(&mut self, p: csod::machine::VirtAddr) {
        self.csod
            .free(&mut self.machine, &mut self.heap, ThreadId::MAIN, p)
            .unwrap();
    }
}

#[test]
fn seeded_overflow_lands_in_the_jsonl_trap_report() {
    let dir = std::env::temp_dir().join("csod-observability");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("traps-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut w = world(CsodConfig {
        trace: csod::core::TraceParams {
            trap_report_path: Some(path.clone()),
            ..csod::core::TraceParams::default()
        },
        ..CsodConfig::default()
    });
    let site = SiteToken(1);
    w.csod.register_site(
        site,
        CallingContext::from_locations(&w.frames, ["memcpy.S:81", "handler.c:44", "main.c:1"]),
    );
    // The first allocation of a fresh runtime is watched with certainty.
    // 44 bytes round up to a watch word at +48, so the trap lands four
    // bytes past the end of the object — a nonzero overflow offset.
    let p = w.malloc("request_buffer.c:55", 44);
    assert!(w.csod.is_watched(p));
    w.machine.set_current_site(ThreadId::MAIN, site);
    w.machine.app_write(ThreadId::MAIN, p + 48, 8).unwrap();
    w.csod.poll(&mut w.machine);
    w.csod.finish(&mut w.machine);

    // The structured records are stored in memory: the watchpoint trap,
    // plus the exit-time canary scan independently finding the same
    // corruption on the never-freed object.
    let reports = w.csod.trap_reports();
    assert_eq!(reports.len(), 2);
    assert_eq!(TrapReport::method_tag(reports[1].method), "canary_exit");
    let report = &reports[0];
    assert_eq!(report.offset_past_end, 4);
    assert_eq!(report.requested_size, 44);
    assert_eq!(
        report.alloc_context,
        vec!["request_buffer.c:55", "request.c:210", "main.c:1"]
    );
    assert_eq!(report.overflow_site[0], "memcpy.S:81");

    // ...and the JSONL sink carries the same record, self-contained,
    // closed by the stream terminator finish() emits.
    let saved = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<&str> = saved.lines().collect();
    assert_eq!(lines.len(), 3, "one JSON line per detection + terminator");
    assert_eq!(
        lines[2],
        csod::core::ReportPipeline::terminator_line(2),
        "stream ends with a truncation-safe terminator record"
    );
    let line = lines[0];
    assert!(line.contains("\"method\":\"watchpoint\""));
    assert!(line.contains("\"kind\":\"write\""));
    assert!(line.contains("\"offset_past_end\":4"));
    assert!(line.contains("\"requested_size\":44"));
    assert!(line.contains(
        "\"alloc_context\":[\"request_buffer.c:55\",\"request.c:210\",\"main.c:1\"]"
    ));
    assert!(line.contains("\"overflow_site\":[\"memcpy.S:81\",\"handler.c:44\",\"main.c:1\"]"));
    assert_eq!(line, reports[0].to_json_line());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn canary_detections_flow_through_the_same_pipeline() {
    let mut w = world(CsodConfig::default());
    // Fill the four registers with other contexts, then find an
    // unwatched victim and corrupt its canary.
    for i in 0..4 {
        let _ = w.malloc(&format!("noise{i}.c:1"), 16);
    }
    let mut victim = None;
    for _ in 0..40 {
        let p = w.malloc("victim.c:7", 24);
        if !w.csod.is_watched(p) {
            victim = Some(p);
            break;
        }
        w.free(p);
    }
    let p = victim.expect("an unwatched allocation appears quickly");
    w.machine.app_write(ThreadId::MAIN, p + 24, 8).unwrap();
    w.csod.poll(&mut w.machine);
    w.free(p);

    let report = w.csod.trap_reports().last().expect("canary report");
    assert_eq!(TrapReport::method_tag(report.method), "canary_free");
    assert_eq!(report.offset_past_end, 0, "canary word sits at the end");
    assert_eq!(report.alloc_context[0], "victim.c:7");
    assert!(report.overflow_site.is_empty(), "canaries cannot know the site");
}

#[test]
fn metrics_snapshot_agrees_with_stats_in_both_formats() {
    let mut w = world(CsodConfig::default());
    for i in 0..200 {
        let p = w.malloc(&format!("s{}.c:1", i % 7), 32);
        w.free(p);
    }
    let p = w.malloc("bug.c:13", 32);
    if w.csod.is_watched(p) {
        w.machine.app_write(ThreadId::MAIN, p + 32, 8).unwrap();
        w.csod.poll(&mut w.machine);
    }
    w.csod.finish(&mut w.machine);

    let registry = w.csod.metrics_registry();
    assert_eq!(registry.counter("csod_allocations_total"), Some(201));
    assert_eq!(registry.counter("csod_frees_total"), Some(200));
    assert_eq!(
        registry.counter("csod_trap_reports_total"),
        Some(w.csod.trap_reports().len() as u64)
    );
    assert_eq!(registry.gauge("csod_distinct_contexts"), Some(8.0));

    let json = registry.to_json();
    assert!(json.contains("\"csod_allocations_total\": 201"));
    assert!(json.contains("csod_watch_lifetime_ns"));
    assert!(json.contains("csod_ctx_probability_ppm"));

    let prom = registry.to_prometheus();
    assert!(prom.contains("# TYPE csod_allocations_total counter"));
    assert!(prom.contains("csod_allocations_total 201"));
    assert!(prom.contains("# TYPE csod_watched_objects gauge"));
    assert!(prom.contains("# TYPE csod_slot_occupancy histogram"));
    assert!(prom.contains("csod_slot_occupancy_bucket"));
}

#[test]
fn trace_stream_narrates_the_run() {
    let mut w = world(CsodConfig::default());
    let p = w.malloc("hot.c:1", 32);
    for i in 0..50 {
        let q = w.malloc(&format!("s{}.c:1", i % 5), 16);
        w.free(q);
    }
    w.machine.app_write(ThreadId::MAIN, p + 32, 8).unwrap();
    w.csod.poll(&mut w.machine);

    let stream = w.csod.drain_trace();
    if csod::trace::trace_compiled_off() {
        assert!(stream.events.is_empty());
        return;
    }
    assert!(stream.count_of(TraceEventKind::AllocSampled) >= 1);
    assert!(stream.count_of(TraceEventKind::WatchInstalled) >= 1);
    assert_eq!(stream.count_of(TraceEventKind::TrapFired), 1);
    assert!(stream.count_of(TraceEventKind::FreeFiltered) >= 1);
    // Time-ordered, and a second drain starts empty.
    assert!(stream.events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
    assert!(w.csod.drain_trace().events.is_empty());
}
