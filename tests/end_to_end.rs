//! Cross-crate integration tests: the full CSOD pipeline from machine to
//! report.

use csod::core::{Csod, CsodConfig, DetectionMethod, ReplacementPolicy};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{AccessKind, Machine, SiteToken, ThreadId, VirtDuration};
use std::sync::Arc;

struct World {
    machine: Machine,
    heap: SimHeap,
    csod: Csod,
    frames: Arc<FrameTable>,
}

fn world(config: CsodConfig) -> World {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let csod = Csod::new(config, Arc::clone(&frames));
    World {
        machine,
        heap,
        csod,
        frames,
    }
}

impl World {
    fn ctx(&self, site: &str) -> CallingContext {
        CallingContext::from_locations(&self.frames, [site, "main.c:1"])
    }

    fn key(&self, site: &str) -> ContextKey {
        ContextKey::new(self.frames.intern(site), 0x40)
    }

    fn malloc(&mut self, site: &str, size: u64) -> csod::machine::VirtAddr {
        let key = self.key(site);
        let ctx = self.ctx(site);
        self.csod
            .malloc(&mut self.machine, &mut self.heap, ThreadId::MAIN, size, key, &ctx)
            .unwrap()
    }
}

#[test]
fn pipeline_detects_and_reports_with_full_contexts() {
    let mut w = world(CsodConfig::default());
    let site = SiteToken(1);
    w.csod.register_site(
        site,
        CallingContext::from_locations(&w.frames, ["strcpy.S:40", "request.c:210", "main.c:1"]),
    );
    let p = w.malloc("request_buffer.c:55", 48);
    w.machine.set_current_site(ThreadId::MAIN, site);
    w.machine.app_write(ThreadId::MAIN, p + 48, 8).unwrap();
    w.csod.poll(&mut w.machine);

    let reports = w.csod.reports();
    assert_eq!(reports.len(), 1);
    let text = reports[0].render(&w.frames);
    assert!(text.contains("over-write problem is detected at:"));
    assert!(text.contains("strcpy.S:40"));
    assert!(text.contains("request.c:210"));
    assert!(text.contains("request_buffer.c:55"));
}

#[test]
fn four_watchpoints_is_a_hard_limit_end_to_end() {
    let mut w = world(CsodConfig::default());
    let mut ptrs = Vec::new();
    for i in 0..10 {
        ptrs.push(w.malloc(&format!("site{i}.c:1"), 32));
    }
    let watched = ptrs.iter().filter(|&&p| w.csod.is_watched(p)).count();
    assert!(watched <= 4, "at most four objects watched, got {watched}");
    assert!(w.machine.free_registers(ThreadId::MAIN) <= 4);
}

#[test]
fn watchpoints_span_threads_created_before_and_after_install() {
    let mut w = world(CsodConfig::default());
    let early = w.csod.spawn_thread(&mut w.machine);
    let p = w.malloc("shared.c:9", 64);
    assert!(w.csod.is_watched(p));
    let late = w.csod.spawn_thread(&mut w.machine);

    for (tid, name) in [(early, "early"), (late, "late")] {
        w.machine.set_current_site(tid, SiteToken::UNKNOWN);
        w.machine.app_read(tid, p + 64, 8).unwrap();
        w.csod.poll(&mut w.machine);
        assert!(
            w.csod.reports().iter().any(|r| r.thread == tid),
            "{name} thread's access must trap in that thread"
        );
    }
}

#[test]
fn freeing_a_watched_object_recycles_registers_for_later_bugs() {
    let mut w = world(CsodConfig::with_policy(ReplacementPolicy::Naive));
    // Fill all four registers.
    let ptrs: Vec<_> = (0..4).map(|i| w.malloc(&format!("f{i}.c:1"), 32)).collect();
    for p in ptrs {
        w.csod
            .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
            .unwrap();
    }
    // Even under the no-preemption policy, a new never-watched context
    // gets the freed registers and the bug is caught.
    let bug = w.malloc("bug.c:13", 32);
    assert!(w.csod.is_watched(bug));
    w.machine.app_write(ThreadId::MAIN, bug + 32, 8).unwrap();
    w.csod.poll(&mut w.machine);
    assert!(w.csod.detected_by_watchpoint());
}

#[test]
fn canary_evidence_without_any_watchpoint_coverage() {
    let mut w = world(CsodConfig::default());
    // Occupy the watchpoints with other contexts.
    for i in 0..4 {
        let _ = w.malloc(&format!("noise{i}.c:1"), 16);
    }
    // Use one context enough times that its probability is halved well
    // below certainty, then overflow an unwatched object.
    let mut target = None;
    for _ in 0..40 {
        let p = w.malloc("victim.c:7", 24);
        if !w.csod.is_watched(p) {
            target = Some(p);
            break;
        }
        w.csod
            .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
            .unwrap();
    }
    let p = target.expect("an unwatched allocation appears quickly");
    w.machine.app_write(ThreadId::MAIN, p + 24, 8).unwrap();
    w.csod.poll(&mut w.machine);
    assert!(!w.csod.detected_by_watchpoint(), "deliberately unwatched");
    w.csod
        .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
        .unwrap();
    let report = w.csod.reports().last().expect("canary fired");
    assert_eq!(report.method, DetectionMethod::CanaryOnFree);
    // And the context is pinned: the next object from it is watched.
    let p2 = w.malloc("victim.c:7", 24);
    assert!(w.csod.is_watched(p2), "pinned context preempts a register");
}

#[test]
fn burst_throttling_kicks_in_and_recovers_end_to_end() {
    let mut w = world(CsodConfig::default());
    let key = w.key("swaptions.c:1");
    for _ in 0..5_100 {
        let p = w.malloc("swaptions.c:1", 16);
        w.csod
            .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
            .unwrap();
    }
    assert_eq!(
        w.csod.sampling().probability_ppm(key),
        Some(1),
        "burst throttle at 0.0001%"
    );
    // After the 10-second window the probability recovers to the floor.
    w.machine.skip_time(VirtDuration::from_secs(11));
    let _ = w.malloc("swaptions.c:1", 16);
    assert_eq!(w.csod.sampling().probability_ppm(key), Some(10));
}

#[test]
fn reviving_gives_floor_contexts_another_chance() {
    // Section IV-A: a context that was watched many times without
    // overflowing sits at the floor; after a quiet period it is randomly
    // boosted so input-dependent bugs keep a chance.
    let mut w = world(CsodConfig::default());
    let key = w.key("revive.c:1");
    // Drive the context to the floor: repeated watches halve it.
    let _ = w.malloc("revive.c:1", 16);
    for _ in 0..30 {
        w.csod.sampling().on_watched(key);
    }
    assert_eq!(w.csod.sampling().probability_ppm(key), Some(10), "at floor");
    // Mark the floor time, wait out the revive period, and allocate
    // until the random boost lands (1% per allocation by default).
    let _ = w.malloc("revive.c:1", 16);
    w.machine.skip_time(VirtDuration::from_secs(11));
    let mut revived = false;
    for _ in 0..2_000 {
        let p = w.malloc("revive.c:1", 16);
        if w.csod.sampling().probability_ppm(key).unwrap() > 10 {
            revived = true;
            break;
        }
        w.csod
            .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
            .unwrap();
    }
    assert!(revived, "the reviving mechanism must eventually fire");
}

#[test]
fn non_continuous_overflow_beyond_the_watch_word_is_missed() {
    // Documented limitation (paper Section VI): watchpoints guard only
    // the boundary word; an overflow that skips it goes unseen.
    let mut w = world(CsodConfig::default());
    let p = w.malloc("sparse.c:3", 32);
    assert!(w.csod.is_watched(p));
    // Skip the watched word (32..40) and hit 48..56 instead.
    w.machine
        .app_access(ThreadId::MAIN, p + 48, 8, AccessKind::Write)
        .unwrap();
    w.csod.poll(&mut w.machine);
    assert!(!w.csod.detected(), "non-continuous overflows are missed");
}

#[test]
fn finish_reports_leaked_overflows_and_persists() {
    let dir = std::env::temp_dir().join("csod-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("evidence-{}.txt", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let mut w = world(CsodConfig {
        evidence_path: Some(path.clone()),
        ..CsodConfig::default()
    });
    for i in 0..4 {
        let _ = w.malloc(&format!("noise{i}.c:1"), 16);
    }
    // An unwatched leaked object is overflowed and never freed.
    let mut leaked = None;
    for _ in 0..40 {
        let p = w.malloc("leak.c:2", 16);
        if !w.csod.is_watched(p) {
            leaked = Some(p);
            break;
        }
    }
    let p = leaked.expect("unwatched allocation");
    w.machine.app_write(ThreadId::MAIN, p + 16, 8).unwrap();
    w.csod.poll(&mut w.machine);
    w.csod.finish(&mut w.machine);
    assert_eq!(w.csod.stats().canary_exit_hits, 1);
    let saved = std::fs::read_to_string(&path).unwrap();
    assert!(saved.contains("leak.c:2"));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn overhead_accounting_separates_app_and_tool() {
    let mut w = world(CsodConfig::default());
    for i in 0..100 {
        let p = w.malloc(&format!("s{}.c:1", i % 7), 64);
        for off in (0..64).step_by(8) {
            w.machine.app_read(ThreadId::MAIN, p + off, 8).unwrap();
        }
        w.csod
            .free(&mut w.machine, &mut w.heap, ThreadId::MAIN, p)
            .unwrap();
    }
    w.csod.finish(&mut w.machine);
    let counter = w.machine.counter();
    assert!(counter.tool_ns() > 0);
    assert!(counter.app_ns() > counter.tool_ns() / 100, "app work exists");
    assert!(counter.normalized_overhead() > 1.0);
    assert_eq!(counter.accesses(), 800);
}
