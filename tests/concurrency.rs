//! Concurrency stress tests on the shared data structures that the
//! paper designs for multithreaded programs: the bucket-locked context
//! table (Section III-B1), the frame interner, and the per-thread
//! generator (Section III-A1).

use csod::ctx::{CallingContext, ContextKey, ContextTable, FrameTable};
use csod::rng::{with_thread_rng, Arc4Random};
use std::collections::HashSet;
use std::sync::Mutex;

#[test]
fn context_table_survives_heavy_contention() {
    let frames = FrameTable::new();
    let table: ContextTable<u64> = ContextTable::with_buckets(8);
    let keys: Vec<ContextKey> = (0..64)
        .map(|i| ContextKey::new(frames.intern(&format!("hot{i}.c:1")), 0x40))
        .collect();
    let threads = 8;
    let iters = 2_000;
    crossbeam::scope(|scope| {
        for t in 0..threads {
            let keys = &keys;
            let table = &table;
            scope.spawn(move |_| {
                for i in 0..iters {
                    let key = keys[(t * 7 + i) % keys.len()];
                    table.with_entry(key, || 0, |v| *v += 1);
                }
            });
        }
    })
    .unwrap();
    let mut total = 0;
    table.for_each(|_, v| total += *v);
    assert_eq!(total, (threads * iters) as u64);
    assert_eq!(table.len(), keys.len());
}

#[test]
fn frame_interner_is_consistent_across_threads() {
    let frames = FrameTable::new();
    let results: Mutex<Vec<Vec<u32>>> = Mutex::new(Vec::new());
    crossbeam::scope(|scope| {
        for _ in 0..8 {
            let frames = &frames;
            let results = &results;
            scope.spawn(move |_| {
                let ids: Vec<u32> = (0..200)
                    .map(|i| frames.intern(&format!("file{}.c:{i}", i % 50)).as_u32())
                    .collect();
                results.lock().unwrap().push(ids);
            });
        }
    })
    .unwrap();
    let results = results.lock().unwrap();
    for other in results.iter().skip(1) {
        assert_eq!(other, &results[0], "all threads agree on every id");
    }
    assert_eq!(frames.len(), 200);
}

#[test]
fn per_thread_generators_are_independent_streams() {
    let prefixes: Mutex<HashSet<Vec<u32>>> = Mutex::new(HashSet::new());
    crossbeam::scope(|scope| {
        for _ in 0..8 {
            let prefixes = &prefixes;
            scope.spawn(move |_| {
                let p: Vec<u32> = (0..8).map(|_| with_thread_rng(|r| r.next_u32())).collect();
                prefixes.lock().unwrap().insert(p);
            });
        }
    })
    .unwrap();
    assert_eq!(
        prefixes.lock().unwrap().len(),
        8,
        "no two threads share a stream"
    );
}

#[test]
fn explicit_generators_are_send() {
    // Sampling decisions can move across worker threads in test
    // harnesses; the generator itself must be freely movable.
    let handles: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let mut rng = Arc4Random::from_seed(42, t);
                (0..1000).map(|_| u64::from(rng.next_u32())).sum::<u64>()
            })
        })
        .collect();
    let sums: HashSet<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert_eq!(sums.len(), 4, "distinct streams give distinct sums");
}

#[test]
fn sampling_unit_is_safe_under_concurrent_allocations() {
    // The paper's allocator interposition runs on every application
    // thread concurrently; the sampling unit's bucket-locked table must
    // keep exact counts under contention.
    use csod::core::{SamplingParams, SamplingUnit};
    use csod::machine::VirtInstant;
    use csod::rng::Arc4Random;

    let frames = FrameTable::new();
    let unit = SamplingUnit::new(SamplingParams::default());
    let keys: Vec<ContextKey> = (0..16)
        .map(|i| ContextKey::new(frames.intern(&format!("mt{i}.c:1")), 0x40))
        .collect();
    let per_thread = 500u64;
    crossbeam::scope(|scope| {
        for t in 0..8u64 {
            let unit = &unit;
            let keys = &keys;
            let frames = &frames;
            scope.spawn(move |_| {
                let mut rng = Arc4Random::from_seed(99, t);
                for i in 0..per_thread {
                    let key = keys[((t + i) % keys.len() as u64) as usize];
                    let decision = unit.on_allocation(
                        key,
                        VirtInstant::BOOT,
                        &mut rng,
                        &CallingContext::from_locations(frames, ["mt.c:1", "main.c:1"]),
                        |_| false,
                    );
                    if decision.wants_watch {
                        unit.on_watched(key);
                    }
                }
            });
        }
    })
    .unwrap();
    assert_eq!(unit.distinct_contexts(), keys.len());
    assert_eq!(unit.total_allocations(), 8 * per_thread);
    for key in keys {
        let p = unit.probability_ppm(key).unwrap();
        assert!((10..=1_000_000).contains(&p));
    }
}

#[test]
fn calling_contexts_are_shareable() {
    // CallingContext values flow between the sampler, the reporter and
    // the evidence store; they must be Send + Sync.
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<CallingContext>();
    assert_send_sync::<ContextTable<u64>>();
    assert_send_sync::<FrameTable>();
}
