//! Statistical effectiveness invariants (Table II shape), verified with
//! reduced execution counts so the suite stays fast.

use csod::analyze::analyze;
use csod::core::{CsodConfig, ReplacementPolicy};
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};

fn detection_count(app: &BuggyApp, policy: ReplacementPolicy, runs: u64) -> u64 {
    let registry = app.registry();
    let trace = app.trace(42);
    (0..runs)
        .filter(|&seed| {
            let mut config = CsodConfig::with_policy(policy);
            config.seed = seed;
            TraceRunner::new(&registry, ToolSpec::Csod(config))
                .run(trace.iter().copied())
                .watchpoint_detected
        })
        .count() as u64
}

#[test]
fn naive_detects_all_simple_apps_every_time() {
    for name in ["gzip", "libdwarf", "libhx", "libtiff", "polymorph"] {
        let app = BuggyApp::by_name(name).unwrap();
        assert_eq!(
            detection_count(&app, ReplacementPolicy::Naive, 30),
            30,
            "{name}: naive must always detect (Table II)"
        );
    }
}

#[test]
fn naive_never_detects_the_complex_apps() {
    for name in ["heartbleed", "memcached", "mysql", "zziplib"] {
        let app = BuggyApp::by_name(name).unwrap();
        assert_eq!(
            detection_count(&app, ReplacementPolicy::Naive, 30),
            0,
            "{name}: naive must never detect (Table II)"
        );
    }
}

#[test]
fn adaptive_policies_detect_every_app_within_the_paper_band() {
    // Paper: random/near-FIFO detect between 10% and 100% per execution.
    let runs = 120;
    for app in BuggyApp::all() {
        for policy in [ReplacementPolicy::Random, ReplacementPolicy::NearFifo] {
            let detections = detection_count(&app, policy, runs);
            let rate = detections as f64 / runs as f64;
            assert!(
                rate >= 0.03,
                "{} under {policy}: rate {rate:.2} below the band",
                app.name
            );
            // Detection can legitimately be 100% for the tiny apps.
            assert!(rate <= 1.0);
        }
    }
}

#[test]
fn tiny_apps_detected_by_every_policy() {
    for name in ["gzip", "libtiff", "polymorph"] {
        let app = BuggyApp::by_name(name).unwrap();
        for policy in ReplacementPolicy::ALL {
            assert_eq!(
                detection_count(&app, policy, 20),
                20,
                "{name} under {policy}"
            );
        }
    }
}

#[test]
fn detection_is_deterministic_per_seed() {
    let app = BuggyApp::by_name("heartbleed").unwrap();
    let registry = app.registry();
    let trace = app.trace(42);
    for seed in 0..10 {
        let run = |_| {
            TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(seed)))
                .run(trace.iter().copied())
                .watchpoint_detected
        };
        assert_eq!(run(0), run(1), "seed {seed} must be reproducible");
    }
}

#[test]
fn average_detection_rate_is_in_the_paper_range() {
    // Paper: 58% average across the nine applications (random/near-FIFO).
    let runs = 60;
    let apps = BuggyApp::all();
    let mut total = 0u64;
    for app in &apps {
        total += detection_count(&app.clone(), ReplacementPolicy::NearFifo, runs);
    }
    let avg = total as f64 / (runs * apps.len() as u64) as f64;
    assert!(
        (0.40..=0.80).contains(&avg),
        "average detection rate {avg:.2} far from the paper's 0.58"
    );
}

#[test]
fn analysis_priors_never_cost_detections() {
    // Priming the sampler with static verdicts must detect every
    // planted overflow the default schedule detects — same or better
    // count per app, since the bug context starts boosted and the
    // proven-safe contexts stop competing for watch slots.
    let runs = 40;
    for app in BuggyApp::all() {
        let registry = app.registry();
        let trace = app.trace(42);
        let priors = analyze(&registry, &trace).to_priors(&registry);
        let count = |primed: bool| -> u64 {
            (0..runs)
                .filter(|&seed| {
                    let mut config = if primed {
                        CsodConfig::with_priors(priors.clone())
                    } else {
                        CsodConfig::default()
                    };
                    config.seed = seed;
                    TraceRunner::new(&registry, ToolSpec::Csod(config))
                        .run(trace.iter().copied())
                        .watchpoint_detected
                })
                .count() as u64
        };
        let default_count = count(false);
        let primed_count = count(true);
        assert!(
            primed_count >= default_count,
            "{}: priors lost detections ({primed_count} < {default_count} of {runs})",
            app.name
        );
    }
}

#[test]
fn reports_identify_the_injected_bug_site() {
    let app = BuggyApp::by_name("memcached").unwrap();
    let registry = app.registry();
    let trace = app.trace(42);
    let outcome = (0..100)
        .map(|seed| {
            TraceRunner::new(&registry, ToolSpec::Csod(CsodConfig::with_seed(seed)))
                .run(trace.iter().copied())
        })
        .find(|o| o.watchpoint_detected)
        .expect("some execution detects");
    let report = outcome
        .reports
        .iter()
        .find(|r| r.contains("detected at"))
        .expect("a rendered watchpoint report");
    assert!(
        report.contains("overflow/copy.c:81"),
        "report must name the overflowing statement: {report}"
    );
}
