//! Integration tests for the extension features: watchpoint backends
//! (ptrace / combined syscall), the Sampler baseline, and failure
//! injection around the evidence store and allocator.

use csod::core::{Csod, CsodConfig, WatchBackend};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::heap::{HeapConfig, HeapError, SimHeap};
use csod::machine::{Machine, ThreadId, VirtAddr};
use csod::sampler::SamplerConfig;
use csod::workloads::{BuggyApp, ToolSpec, TraceRunner};
use std::sync::Arc;

#[test]
fn every_backend_detects_and_costs_are_ordered() {
    let app = BuggyApp::by_name("gzip").unwrap();
    let registry = app.registry();
    let trace = app.trace(42);
    let mut overheads = Vec::new();
    for backend in [
        WatchBackend::Ptrace,
        WatchBackend::PerfEvent,
        WatchBackend::CombinedSyscall,
    ] {
        let config = CsodConfig {
            backend,
            ..CsodConfig::default()
        };
        let outcome = TraceRunner::new(&registry, ToolSpec::Csod(config)).run(trace.iter().copied());
        assert!(
            outcome.watchpoint_detected,
            "{backend}: detection is backend-independent"
        );
        overheads.push((backend, outcome.tool_ns));
    }
    assert!(
        overheads[0].1 > overheads[1].1 && overheads[1].1 > overheads[2].1,
        "ptrace > perf_event > combined: {overheads:?}"
    );
}

#[test]
fn sampler_catches_long_overreads_but_not_short_overwrites() {
    let runs = 60u64;
    let rate = |name: &str| {
        let app = BuggyApp::by_name(name).unwrap();
        let registry = app.registry();
        let trace = app.trace(42);
        (0..runs)
            .filter(|&seed| {
                TraceRunner::new(
                    &registry,
                    ToolSpec::Sampler(SamplerConfig {
                        phase: seed * 131,
                        ..SamplerConfig::default()
                    }),
                )
                .run(trace.iter().copied())
                .detected
            })
            .count() as f64
            / runs as f64
    };
    let heartbleed = rate("heartbleed"); // 8191-word over-read
    let libhx = rate("libhx"); // 15-word over-write
    assert!(
        heartbleed > 0.9,
        "64KB over-read is nearly always sampled: {heartbleed}"
    );
    assert!(
        libhx < 0.3,
        "short overflows usually dodge access sampling: {libhx}"
    );
    assert!(heartbleed > libhx);
}

#[test]
fn sampler_never_false_positives_on_buggy_free_traffic() {
    // The buggy traces contain heavy legitimate alloc/free/access
    // traffic around the bug; sampling must only flag the real one.
    let app = BuggyApp::by_name("mysql").unwrap();
    let registry = app.registry();
    let trace = app.trace(42);
    let outcome = TraceRunner::new(
        &registry,
        ToolSpec::Sampler(SamplerConfig {
            sample_period: 50, // aggressive sampling
            ..SamplerConfig::default()
        }),
    )
    .run(trace.iter().copied());
    for report in &outcome.reports {
        assert!(
            report.contains("overflow"),
            "only the injected overflow may be reported: {report}"
        );
    }
}

#[test]
fn corrupt_evidence_file_is_tolerated() {
    let dir = std::env::temp_dir().join("csod-ext-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("garbage-{}.evidence", std::process::id()));
    std::fs::write(&path, b"\x00\xFFnot|a\x07context\nrandom line\n# comment\n").unwrap();

    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let mut csod = Csod::new(
        CsodConfig {
            evidence_path: Some(path.clone()),
            ..CsodConfig::default()
        },
        Arc::clone(&frames),
    );
    // Normal operation is unaffected by the garbage.
    let ctx = CallingContext::from_locations(&frames, ["ok.c:1", "main.c:1"]);
    let key = ContextKey::new(frames.intern("ok.c:1"), 0x40);
    let p = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 32, key, &ctx)
        .unwrap();
    assert!(csod.is_watched(p));
    csod.finish(&mut machine);
    // finish() rewrites the file in the canonical format.
    let rewritten = std::fs::read_to_string(&path).unwrap();
    assert!(rewritten.starts_with('#'));
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn allocator_exhaustion_is_reported_and_recoverable() {
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(
        &mut machine,
        HeapConfig {
            base: VirtAddr::new(0x10_0000),
            size: 8192,
        },
    )
    .unwrap();
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
    let ctx = CallingContext::from_locations(&frames, ["big.c:1", "main.c:1"]);
    let key = ContextKey::new(frames.intern("big.c:1"), 0x40);

    let first = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 4096, key, &ctx)
        .unwrap();
    // The second big allocation cannot fit (header + canary included).
    let err = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 4096, key, &ctx)
        .unwrap_err();
    assert!(matches!(
        err,
        csod::core::CsodError::Heap(HeapError::OutOfMemory { .. })
    ));
    // The tool stays consistent: the first object is still managed.
    assert!(csod.is_watched(first));
    csod.free(&mut machine, &mut heap, ThreadId::MAIN, first).unwrap();
    // And the same-sized allocation now succeeds by recycling the block
    // (the freelist allocator does not split size classes).
    let again = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 4096, key, &ctx)
        .unwrap();
    assert!(heap.is_live(csod::core::ObjectLayout::new(true, 4096).real_ptr(again)));
}

#[test]
fn backends_compose_with_thread_spawning() {
    for backend in [WatchBackend::Ptrace, WatchBackend::CombinedSyscall] {
        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(
            CsodConfig {
                backend,
                ..CsodConfig::default()
            },
            Arc::clone(&frames),
        );
        let ctx = CallingContext::from_locations(&frames, ["t.c:1", "main.c:1"]);
        let key = ContextKey::new(frames.intern("t.c:1"), 0x40);
        let p = csod
            .malloc(&mut machine, &mut heap, ThreadId::MAIN, 64, key, &ctx)
            .unwrap();
        let worker = csod.spawn_thread(&mut machine);
        machine.app_write(worker, p + 64, 8).unwrap();
        csod.poll(&mut machine);
        assert!(csod.detected(), "{backend}: late threads are covered");
        csod.free(&mut machine, &mut heap, ThreadId::MAIN, p).unwrap();
        csod.finish(&mut machine);
        assert_eq!(machine.open_events(), 0, "{backend}: no leaked events");
    }
}

#[test]
fn pmu_and_watchpoints_coexist() {
    // Sampler's PMU and CSOD's debug registers are independent hardware;
    // enabling both on one machine must not interfere.
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    machine.pmu_enable(2);
    let mut csod = Csod::new(CsodConfig::default(), Arc::clone(&frames));
    let ctx = CallingContext::from_locations(&frames, ["c.c:1", "main.c:1"]);
    let key = ContextKey::new(frames.intern("c.c:1"), 0x40);
    let p = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 32, key, &ctx)
        .unwrap();
    machine.app_write(ThreadId::MAIN, p, 8).unwrap();
    machine.app_write(ThreadId::MAIN, p + 32, 8).unwrap();
    csod.poll(&mut machine);
    assert!(csod.detected());
    assert!(!machine.take_pmu_samples().is_empty());
}
