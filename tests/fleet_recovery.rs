//! Crash-and-recover: the fleet's durability contract, end to end.
//!
//! The paper's §V-A2 guarantee — a context confirmed to overflow is
//! watched with probability 1.0 on its next execution — must survive
//! the aggregation layer being killed at an arbitrary byte offset.
//! These property tests run a real fleet with every stream carrying at
//! least one corrupt and one duplicated line, truncate the durable
//! journal wherever proptest points, restart, and assert that every
//! checkpoint-confirmed context comes back pinned certain on its very
//! first allocation — and that the ingestor never panics, whatever
//! bytes it is fed.

use csod::core::{Csod, CsodConfig};
use csod::ctx::{CallingContext, ContextKey, FrameTable};
use csod::fleet::{wal_path, FleetConfig, FleetController, FleetPriors, Ingestor, PriorsStore};
use csod::heap::{HeapConfig, SimHeap};
use csod::machine::{Machine, ThreadId};
use csod::rng::PPM_SCALE;
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn unique_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "csod-fleet-recovery-{tag}-{}-{case:x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One small but real fleet generation: chaos workers with planted
/// overflows, every stream corrupted and duplicated at least once.
fn fleet_config(dir: &Path, seed: u64) -> FleetConfig {
    let mut cfg = FleetConfig::new(dir);
    cfg.workers = 2;
    cfg.threads = 2;
    cfg.generations = 1;
    cfg.base.allocations = 1_500;
    cfg.base.seed = seed;
    cfg.corrupt_line_ppm = PPM_SCALE; // >= 1 corrupt line per stream
    cfg.duplicate_line_ppm = PPM_SCALE; // >= 1 duplicate per stream
    cfg.seed = seed ^ 0xF1EE;
    cfg
}

/// A fresh "second execution" seeded from `evidence`: allocates once at
/// the context behind `signature` and reports whether that very first
/// allocation was pinned certain and hardware-watched.
fn first_allocation_is_pinned(signature: &str, evidence: &Path) -> bool {
    let locations: Vec<&str> = signature.split('|').collect();
    let frames = Arc::new(FrameTable::new());
    let mut machine = Machine::new();
    let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
    let mut csod = Csod::new(
        CsodConfig {
            evidence_path: Some(evidence.to_owned()),
            ..CsodConfig::default()
        },
        Arc::clone(&frames),
    );
    // Burn the cold-start certainty on unrelated fillers first, so only
    // evidence can explain a 100 % watch below; free them again so the
    // debug registers are available when the reseeded context arrives.
    let mut fillers = Vec::new();
    for i in 0..6 {
        let site = format!("filler.c:{i}");
        let key = ContextKey::new(frames.intern(&site), 0x40);
        let ctx = CallingContext::from_locations(&frames, [site.as_str(), "main.c:1"]);
        fillers.push(
            csod.malloc(&mut machine, &mut heap, ThreadId::MAIN, 16, key, &ctx)
                .unwrap(),
        );
    }
    for p in fillers {
        csod.free(&mut machine, &mut heap, ThreadId::MAIN, p).unwrap();
    }
    csod.poll(&mut machine);
    let key = ContextKey::new(frames.intern(locations[0]), 0x40);
    let ctx = CallingContext::from_locations(&frames, locations.iter().copied());
    let p = csod
        .malloc(&mut machine, &mut heap, ThreadId::MAIN, 32, key, &ctx)
        .unwrap();
    let pinned = csod
        .sampling()
        .state(key)
        .is_some_and(|state| state.pinned_certain);
    pinned && csod.is_watched(p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Kill the aggregator at any byte of its WAL: every context the
    /// fleet confirmed before the kill is still confirmed after
    /// recovery, and a restarted process watches it with probability
    /// 1.0 on its first allocation.
    #[test]
    fn truncated_journal_still_rewatches_confirmed_contexts(
        seed in any::<u64>(),
        cut_ppm in 0u32..1_000_001,
    ) {
        let dir = unique_dir("wal", seed);
        let mut fleet = FleetController::new(fleet_config(&dir, seed)).unwrap();
        let out = fleet.run();
        prop_assert!(out.detected, "the planted overflows were found");
        prop_assert!(out.confirmed_contexts > 0);
        prop_assert!(out.records_skipped_corrupt > 0, "every stream was corrupted");
        prop_assert!(out.records_deduped > 0, "every stream carried a duplicate");
        let confirmed: Vec<String> =
            fleet.store().priors().iter().map(|(sig, _)| sig.to_owned()).collect();
        let epoch = fleet.store().epoch();
        drop(fleet);

        // A post-checkpoint tail the kill may destroy — that tail is
        // new, uncheckpointed data, allowed to be lost; the fleet's
        // confirmations are not.
        let mut store = PriorsStore::open(&dir).unwrap();
        store.observe("tail.c:9|main.c:1", 1);
        store.observe("tail.c:10|main.c:1", 1);
        drop(store);

        // kill -9 mid-append: chop the WAL at an arbitrary byte.
        let wal = wal_path(&dir, epoch);
        let bytes = std::fs::read(&wal).unwrap();
        let keep = (bytes.len() as u64 * u64::from(cut_ppm) / u64::from(PPM_SCALE)) as usize;
        std::fs::write(&wal, &bytes[..keep.min(bytes.len())]).unwrap();

        // Restart: recovery is consistent, checkpointed data intact.
        let recovered = PriorsStore::open(&dir).unwrap();
        for sig in &confirmed {
            prop_assert!(
                recovered.priors().contains(sig),
                "checkpointed context {sig} lost at cut {cut_ppm}"
            );
        }

        // ...and the §V-A2 guarantee holds across the crash: reseed a
        // fresh process and the buggy context is watched immediately.
        let evidence = dir.join("reseed.evi");
        recovered.priors().write_evidence_file(&evidence).unwrap();
        for sig in &confirmed {
            prop_assert!(
                first_allocation_is_pinned(sig, &evidence),
                "context {sig} not re-watched with probability 1.0"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Chop the *checkpoint* instead: recovery falls back to the
    /// previous checkpoint plus that epoch's WAL, so everything the
    /// first checkpoint held is still confirmed.
    #[test]
    fn corrupt_checkpoint_falls_back_without_losing_the_previous_epoch(
        seed in any::<u64>(),
        cut in 1usize..200,
    ) {
        let dir = unique_dir("ckpt", seed);
        let mut cfg = fleet_config(&dir, seed);
        cfg.generations = 2; // two checkpoints: priors.ckpt + priors.ckpt.prev
        let mut fleet = FleetController::new(cfg).unwrap();
        let out = fleet.run();
        prop_assert!(out.confirmed_contexts > 0);
        prop_assert_eq!(out.journal_checkpoints, 2);
        drop(fleet);

        // Generation 0's confirmations are in the *previous* checkpoint
        // too (generation 1 re-confirms a superset); mangle the current
        // checkpoint mid-frame.
        let ckpt = dir.join("priors.ckpt");
        let bytes = std::fs::read(&ckpt).unwrap();
        let keep = bytes.len().saturating_sub(cut).max(1);
        std::fs::write(&ckpt, &bytes[..keep]).unwrap();

        let recovered = PriorsStore::open(&dir).unwrap();
        prop_assert!(
            recovered.stats().checkpoint_fallbacks > 0 || keep == bytes.len(),
            "the damaged checkpoint was detected"
        );
        prop_assert!(
            !recovered.priors().is_empty(),
            "fallback recovered the previous epoch"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Whatever bytes a stream file contains — random garbage, torn
    /// UTF-8, half a record — the ingestor returns counts, never
    /// panics.
    #[test]
    fn ingestor_never_panics_on_arbitrary_bytes(
        junk in proptest::collection::vec(any::<u8>(), 0..600),
        seed in any::<u64>(),
    ) {
        let dir = unique_dir("junk", seed);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stream.jsonl");
        std::fs::write(&path, &junk).unwrap();
        let mut ingestor = Ingestor::new();
        let mut priors = FleetPriors::new();
        let summary = ingestor.ingest_file(&path, &mut priors);
        // Garbage never fabricates confirmations beyond what parsed.
        prop_assert!(summary.observations.len() <= summary.parsed as usize);
        prop_assert_eq!(
            ingestor.stats().lines_seen,
            summary.parsed + summary.corrupt + u64::from(summary.terminated)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
