//! Property-based tests on core data structures and invariants.

use csod::core::{CsodConfig, SamplingParams, SamplingUnit};
use csod::ctx::{CallingContext, ContextKey, ContextTable, FrameTable};
use csod::heap::{HeapConfig, SimHeap, SizeClass, MIN_ALIGN};
use csod::machine::{Machine, VirtAddr, VirtDuration, VirtInstant};
use csod::rng::{Arc4Random, PPM_SCALE};
use proptest::prelude::*;

proptest! {
    /// Size classes always cover the request, are aligned, and waste a
    /// bounded factor.
    #[test]
    fn size_class_covers_and_bounds_waste(size in 1u64..(1 << 24)) {
        let class = SizeClass::for_request(size);
        let block = class.block_size();
        prop_assert!(block >= size);
        prop_assert_eq!(block % MIN_ALIGN, 0);
        // Power-of-two rounding never doubles more than 2x (+page slack).
        prop_assert!(block <= size * 2 + 4096);
    }

    /// Live heap allocations never overlap, regardless of the
    /// malloc/free interleaving.
    #[test]
    fn heap_objects_never_overlap(ops in proptest::collection::vec((1u64..4096, any::<bool>()), 1..120)) {
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (addr, _) = live.swap_remove(live.len() / 2);
                heap.free(&mut machine, addr).unwrap();
            } else {
                let addr = heap.malloc(&mut machine, size).unwrap();
                let block = heap.usable_size(addr).unwrap();
                for &(other, other_block) in &live {
                    let disjoint = addr.as_u64() + block <= other.as_u64()
                        || other.as_u64() + other_block <= addr.as_u64();
                    prop_assert!(disjoint, "overlap: {addr} vs {other}");
                }
                live.push((addr, block));
            }
        }
        // Statistics agree with the model.
        prop_assert_eq!(heap.stats().live_objects(), live.len() as u64);
    }

    /// Sampling probabilities always stay within [burst floor, 100%].
    #[test]
    fn sampling_probability_stays_in_bounds(
        allocs in 1u64..3000,
        watches in 0u64..40,
        seed in any::<u64>(),
    ) {
        let frames = FrameTable::new();
        let unit = SamplingUnit::new(SamplingParams::default());
        let key = ContextKey::new(frames.intern("p.c:1"), 0x40);
        let ctx = CallingContext::from_locations(&frames, ["p.c:1", "main.c:1"]);
        let mut rng = Arc4Random::from_seed(seed, 0);
        for i in 0..allocs {
            let d = unit.on_allocation(key, VirtInstant::BOOT, &mut rng, &ctx, |_| false);
            prop_assert!(d.probability_ppm <= PPM_SCALE);
            prop_assert!(d.probability_ppm >= 1, "never zero: floor or burst floor");
            if i < watches {
                unit.on_watched(key);
            }
        }
        let state = unit.state(key).unwrap();
        prop_assert_eq!(state.alloc_count, allocs);
    }

    /// The context table is a faithful map under arbitrary key multisets.
    #[test]
    fn context_table_counts_match_model(keys in proptest::collection::vec((0u32..40, 0u64..8), 1..300)) {
        let frames = FrameTable::new();
        let table: ContextTable<u64> = ContextTable::with_buckets(16);
        let mut model = std::collections::HashMap::new();
        for (site, offset) in keys {
            let key = ContextKey::new(frames.intern(&format!("k{site}")), offset * 16);
            table.with_entry(key, || 0u64, |v| *v += 1);
            *model.entry((site, offset)).or_insert(0u64) += 1;
        }
        prop_assert_eq!(table.len(), model.len());
        let mut total = 0;
        table.for_each(|_, v| total += *v);
        prop_assert_eq!(total, model.values().sum::<u64>());
    }

    /// arc4random_uniform never exceeds its bound and hits both halves.
    #[test]
    fn rng_uniform_in_bounds(bound in 1u32..1_000_000, seed in any::<u64>()) {
        let mut rng = Arc4Random::from_seed(seed, 1);
        for _ in 0..64 {
            prop_assert!(rng.uniform(bound) < bound);
        }
    }

    /// Canary layout arithmetic is self-consistent for any size/mode.
    #[test]
    fn object_layout_round_trips(size in 0u64..100_000, evidence in any::<bool>()) {
        use csod::core::{ObjectLayout, CANARY_SIZE};
        let layout = ObjectLayout::new(evidence, size);
        let real = VirtAddr::new(0x4000_0000);
        let user = layout.user_ptr(real);
        prop_assert_eq!(layout.real_ptr(user), real);
        let canary = layout.canary_addr(user);
        // The canary word starts at or past the end of the object...
        prop_assert!(canary.as_u64() >= user.as_u64() + size.min(layout.canary_offset()));
        prop_assert!(canary.as_u64() - user.as_u64() < size.max(1) + 8);
        // ...and the whole thing fits in the raw allocation.
        prop_assert_eq!(
            layout.total_size(),
            layout.user_offset() + layout.canary_offset() + CANARY_SIZE
        );
        prop_assert!(canary.as_u64() + 8 <= real.as_u64() + layout.total_size());
    }

    /// The machine's accounting identity holds for arbitrary charge mixes.
    #[test]
    fn machine_accounting_identity(charges in proptest::collection::vec((0u8..3, 0u64..10_000), 0..100)) {
        use csod::machine::CostDomain;
        let mut m = Machine::new();
        let t0 = m.now();
        for (domain, ns) in charges {
            match domain {
                0 => m.charge(CostDomain::App, ns),
                1 => m.charge(CostDomain::Tool, ns),
                _ => m.wait_io(VirtDuration::from_nanos(ns)),
            }
        }
        let c = m.counter();
        prop_assert_eq!(c.total_ns(), c.app_ns() + c.tool_ns() + c.io_ns());
        prop_assert_eq!((m.now() - t0).as_nanos(), c.total_ns());
        prop_assert!(c.normalized_overhead() >= 1.0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// End-to-end invariant: whatever the allocation pattern, CSOD never
    /// reports a bug in a program that only performs in-bounds accesses,
    /// and at most four objects are watched at any moment.
    #[test]
    fn no_false_positives_under_arbitrary_clean_workloads(
        ops in proptest::collection::vec((0usize..6, 8u64..128, any::<bool>()), 1..150),
        seed in any::<u64>(),
    ) {
        use csod::core::Csod;
        use csod::machine::ThreadId;
        use std::sync::Arc;

        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(CsodConfig::with_seed(seed), Arc::clone(&frames));
        let mut live: Vec<(VirtAddr, u64)> = Vec::new();

        for (site, size, free_one) in ops {
            if free_one && !live.is_empty() {
                let (addr, _) = live.swap_remove(live.len() / 2);
                csod.free(&mut machine, &mut heap, ThreadId::MAIN, addr).unwrap();
            } else {
                let name = format!("site{site}.c:1");
                let key = ContextKey::new(frames.intern(&name), 0x40);
                let ctx = CallingContext::from_locations(&frames, [name.as_str(), "main.c:1"]);
                let addr = csod
                    .malloc(&mut machine, &mut heap, ThreadId::MAIN, size, key, &ctx)
                    .unwrap();
                live.push((addr, size));
            }
            // Touch every live object fully, in bounds.
            for &(addr, size) in &live {
                machine.app_write(ThreadId::MAIN, addr, size.min(8)).unwrap();
                machine.app_read(ThreadId::MAIN, addr + (size - size.min(8)), size.min(8)).unwrap();
            }
            csod.poll(&mut machine);
            let watched = live.iter().filter(|&&(a, _)| csod.is_watched(a)).count();
            prop_assert!(watched <= 4);
        }
        csod.finish(&mut machine);
        prop_assert!(!csod.detected(), "clean program must never alarm");
    }

    /// Conversely: a single one-word overflow on a *watched* object is
    /// always detected, whatever the surrounding pattern.
    #[test]
    fn watched_overflows_are_always_caught(
        prelude in proptest::collection::vec(8u64..128, 0..40),
        seed in any::<u64>(),
    ) {
        use csod::core::Csod;
        use csod::machine::{SiteToken, ThreadId};
        use std::sync::Arc;

        let frames = Arc::new(FrameTable::new());
        let mut machine = Machine::new();
        let mut heap = SimHeap::new(&mut machine, HeapConfig::default()).unwrap();
        let mut csod = Csod::new(CsodConfig::with_seed(seed), Arc::clone(&frames));

        for (i, size) in prelude.iter().enumerate() {
            let name = format!("pre{i}.c:1");
            let key = ContextKey::new(frames.intern(&name), 0x40);
            let ctx = CallingContext::from_locations(&frames, [name.as_str(), "main.c:1"]);
            let _ = csod
                .malloc(&mut machine, &mut heap, ThreadId::MAIN, *size, key, &ctx)
                .unwrap();
        }
        let key = ContextKey::new(frames.intern("bug.c:1"), 0x40);
        let ctx = CallingContext::from_locations(&frames, ["bug.c:1", "main.c:1"]);
        let p = csod
            .malloc(&mut machine, &mut heap, ThreadId::MAIN, 40, key, &ctx)
            .unwrap();
        prop_assume!(csod.is_watched(p));
        machine.set_current_site(ThreadId::MAIN, SiteToken(0));
        machine.app_write(ThreadId::MAIN, p + 40, 8).unwrap();
        csod.poll(&mut machine);
        prop_assert!(csod.detected_by_watchpoint());
    }
}
