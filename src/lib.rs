//! # csod — Context-Sensitive Overflow Detection, reproduced in Rust
//!
//! Umbrella crate re-exporting the whole reproduction of *CSOD:
//! Context-Sensitive Overflow Detection* (Liu et al., CGO 2019):
//!
//! * [`core`] — the CSOD runtime (sampling, watchpoints,
//!   canaries, evidence, reports);
//! * [`machine`] — the deterministic machine substrate
//!   (address space, threads, debug registers, perf events, signals,
//!   virtual time);
//! * [`heap`] — the allocator substrate;
//! * [`ctx`] / [`rng`] — calling contexts and the
//!   per-thread generator;
//! * [`asan`] — the AddressSanitizer comparison baseline;
//! * [`sampler`] — the Sampler (MICRO'18) PMU-sampling
//!   baseline;
//! * [`workloads`] — the paper's effectiveness and performance workloads;
//! * [`analyze`] — the static overflow-risk pre-analysis that primes
//!   the sampler with per-context priors;
//! * [`fleet`] — crash-safe fleet aggregation: supervised workers,
//!   durable cross-run priors, corrupt-stream-tolerant ingestion;
//! * [`trace`] — the always-on observability layer (event rings,
//!   metrics snapshots, trap-report sinks); build with `--features
//!   trace-off` to compile the tracer out.
//!
//! Run `cargo run --example quickstart` for a two-minute tour, and see
//! DESIGN.md / EXPERIMENTS.md for the experiment index.

pub use asan_sim as asan;
pub use csod_analyze as analyze;
pub use sampler_sim as sampler;
pub use csod_core as core;
pub use csod_ctx as ctx;
pub use csod_fleet as fleet;
pub use csod_rng as rng;
pub use csod_trace as trace;
pub use sim_heap as heap;
pub use sim_machine as machine;
pub use workloads;
